//! End-to-end engine tests: the batched path must agree with the naive
//! per-query path and with ground-truth graph traversals, certificates must
//! be genuine cuts, and the cache must actually amortise eliminations.

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{BatchRequest, ConnQuery, Engine, EngineConfig, EngineError, StoreError};
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_graph::{generators, EdgeId, Graph, VertexId};
use ftl_seeded::Seed;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine_for(g: &Graph, f: usize, seed: u64, config: EngineConfig) -> Engine {
    let scheme = CycleSpaceScheme::label(g, f, Seed::new(seed)).unwrap();
    Engine::from_cycle_space(&scheme, config)
}

fn random_fault_sets(g: &Graph, count: usize, f: usize, rng: &mut StdRng) -> Vec<Vec<EdgeId>> {
    (0..count)
        .map(|_| {
            let mut fs = Vec::new();
            while fs.len() < f.min(g.num_edges()) {
                let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
                if !fs.contains(&e) {
                    fs.push(e);
                }
            }
            fs
        })
        .collect()
}

fn random_queries(g: &Graph, count: usize, fault_sets: usize, rng: &mut StdRng) -> Vec<ConnQuery> {
    (0..count)
        .map(|_| ConnQuery {
            s: VertexId::new(rng.gen_range(0..g.num_vertices())),
            t: VertexId::new(rng.gen_range(0..g.num_vertices())),
            fault_set: rng.gen_range(0..fault_sets),
        })
        .collect()
}

#[test]
fn batched_naive_and_truth_agree() {
    for (name, g) in [
        ("grid", generators::grid(4, 4)),
        ("cycle", generators::cycle(12)),
        ("star", generators::star(10)),
    ] {
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        let mut engine = engine_for(&g, 5, 9, EngineConfig::default());
        let fault_sets = random_fault_sets(&g, 4, 5, &mut rng);
        let queries = random_queries(&g, 120, fault_sets.len(), &mut rng);
        let req = BatchRequest {
            fault_sets: fault_sets.clone(),
            queries,
        };
        let batched = engine.execute(&req).unwrap();
        let naive = engine.execute_naive(&req).unwrap();
        assert_eq!(batched.results.len(), naive.results.len());
        for (i, (b, nv)) in batched.results.iter().zip(&naive.results).enumerate() {
            let q = &req.queries[i];
            assert_eq!(
                b.connected, nv.connected,
                "{name}: query {i} batched vs naive"
            );
            let mask = forbidden_mask(&g, &fault_sets[q.fault_set]);
            let truth = connected_avoiding(&g, q.s, q.t, &mask);
            assert_eq!(b.connected, truth, "{name}: query {i} vs ground truth");
        }
        // Batched ran one elimination per distinct fault set; naive ran one
        // per query.
        assert_eq!(batched.stats.eliminations, fault_sets.len());
        assert_eq!(naive.stats.eliminations, req.queries.len());
    }
}

#[test]
fn certificates_are_genuine_cuts() {
    let g = generators::grid(3, 4);
    let mut rng = StdRng::seed_from_u64(0xCE57);
    let mut engine = engine_for(
        &g,
        4,
        3,
        EngineConfig {
            collect_certificates: true,
            ..EngineConfig::default()
        },
    );
    let fault_sets = random_fault_sets(&g, 6, 4, &mut rng);
    let queries = random_queries(&g, 200, fault_sets.len(), &mut rng);
    let req = BatchRequest {
        fault_sets: fault_sets.clone(),
        queries,
    };
    let resp = engine.execute(&req).unwrap();
    let mut disconnections = 0;
    for (q, r) in req.queries.iter().zip(&resp.results) {
        if r.connected {
            assert!(r.certificate.is_none());
            continue;
        }
        disconnections += 1;
        let cert = r.certificate.as_ref().expect("disconnected carries a cut");
        assert!(!cert.is_empty());
        // The certificate must be a subset of the fault set…
        for e in cert {
            assert!(fault_sets[q.fault_set].contains(e), "cert edge outside F");
        }
        // …and removing it alone must separate s from t.
        let mask = forbidden_mask(&g, cert);
        assert!(
            !connected_avoiding(&g, q.s, q.t, &mask),
            "certificate does not cut ({:?}, {:?})",
            q.s,
            q.t
        );
    }
    assert!(disconnections > 0, "workload produced no disconnections");
}

#[test]
fn repeated_fault_sets_are_served_from_cache() {
    let g = generators::grid(4, 4);
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let mut engine = engine_for(&g, 6, 4, EngineConfig::default());
    let fault_sets = random_fault_sets(&g, 3, 6, &mut rng);
    let queries = random_queries(&g, 30, fault_sets.len(), &mut rng);
    let req = BatchRequest {
        fault_sets: fault_sets.clone(),
        queries,
    };
    let first = engine.execute(&req).unwrap();
    assert_eq!(first.stats.eliminations, 3);
    assert_eq!(first.stats.cache_hits, 0);
    let second = engine.execute(&req).unwrap();
    assert_eq!(second.stats.eliminations, 0);
    assert_eq!(second.stats.cache_hits, 3);
    // A permuted fault set is the same canonical set: still a hit.
    let mut permuted = fault_sets[0].clone();
    permuted.reverse();
    let req2 = BatchRequest {
        fault_sets: vec![permuted],
        queries: vec![ConnQuery {
            s: VertexId::new(0),
            t: VertexId::new(15),
            fault_set: 0,
        }],
    };
    let third = engine.execute(&req2).unwrap();
    assert_eq!(third.stats.eliminations, 0);
    assert_eq!(third.stats.cache_hits, 1);
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(a, b, "cache must not change answers");
    }
}

#[test]
fn zero_capacity_cache_still_answers_correctly() {
    let g = generators::cycle(10);
    let mut rng = StdRng::seed_from_u64(7);
    let mut engine = engine_for(
        &g,
        3,
        5,
        EngineConfig {
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    );
    let fault_sets = random_fault_sets(&g, 2, 3, &mut rng);
    let queries = random_queries(&g, 40, 2, &mut rng);
    let req = BatchRequest {
        fault_sets: fault_sets.clone(),
        queries,
    };
    let a = engine.execute(&req).unwrap();
    let b = engine.execute(&req).unwrap();
    assert_eq!(a.stats.eliminations, 2);
    assert_eq!(b.stats.eliminations, 2, "no cache, so re-eliminate");
    for (q, r) in req.queries.iter().zip(&a.results) {
        let mask = forbidden_mask(&g, &fault_sets[q.fault_set]);
        assert_eq!(r.connected, connected_avoiding(&g, q.s, q.t, &mask));
    }
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x, y);
    }
}

#[test]
fn bad_fault_set_index_is_an_error() {
    let g = generators::path(4);
    let mut engine = engine_for(&g, 2, 1, EngineConfig::default());
    let req = BatchRequest {
        fault_sets: vec![vec![EdgeId::new(0)]],
        queries: vec![ConnQuery {
            s: VertexId::new(0),
            t: VertexId::new(3),
            fault_set: 5,
        }],
    };
    assert!(matches!(
        engine.execute(&req),
        Err(EngineError::UnknownFaultSet {
            index: 5,
            available: 1
        })
    ));
}

#[test]
fn missing_edge_label_is_a_store_error() {
    let g = generators::path(4);
    let mut engine = engine_for(&g, 2, 1, EngineConfig::default());
    let req = BatchRequest {
        fault_sets: vec![vec![EdgeId::new(99)]],
        queries: vec![],
    };
    assert!(matches!(
        engine.execute(&req),
        Err(EngineError::Store(StoreError::Missing(_)))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random graphs, fault sets, and query mixes: the engine always agrees
    /// with a direct graph traversal.
    #[test]
    fn engine_matches_truth_on_random_workloads(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::connected_random(24, 0.12, 1, &mut rng);
        let f = 1 + (seed as usize) % 6;
        let mut engine = engine_for(&g, f, seed ^ 0xABC, EngineConfig::default());
        let fault_sets = random_fault_sets(&g, 3, f, &mut rng);
        let queries = random_queries(&g, 60, 3, &mut rng);
        let req = BatchRequest { fault_sets: fault_sets.clone(), queries };
        let resp = engine.execute(&req).unwrap();
        for (q, r) in req.queries.iter().zip(&resp.results) {
            let mask = forbidden_mask(&g, &fault_sets[q.fault_set]);
            prop_assert_eq!(r.connected, connected_avoiding(&g, q.s, q.t, &mask));
        }
    }
}
