//! End-to-end engine tests: the batched path must agree with the naive
//! per-query path and with ground-truth graph traversals, certificates must
//! be genuine cuts, and the cache must actually amortise eliminations.

// Test code: panicking asserts and progress prints are the point here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::print_stdout
)]
use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{BatchRequest, ConnQuery, Engine, EngineConfig, EngineError, StoreError};
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_graph::{generators, EdgeId, Graph, VertexId};
use ftl_seeded::Seed;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine_for(g: &Graph, f: usize, seed: u64, config: EngineConfig) -> Engine {
    let scheme = CycleSpaceScheme::label(g, f, Seed::new(seed)).unwrap();
    Engine::from_cycle_space(&scheme, config).unwrap()
}

fn random_fault_sets(g: &Graph, count: usize, f: usize, rng: &mut StdRng) -> Vec<Vec<EdgeId>> {
    (0..count)
        .map(|_| {
            let mut fs = Vec::new();
            while fs.len() < f.min(g.num_edges()) {
                let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
                if !fs.contains(&e) {
                    fs.push(e);
                }
            }
            fs
        })
        .collect()
}

fn random_queries(g: &Graph, count: usize, fault_sets: usize, rng: &mut StdRng) -> Vec<ConnQuery> {
    (0..count)
        .map(|_| ConnQuery {
            s: VertexId::new(rng.gen_range(0..g.num_vertices())),
            t: VertexId::new(rng.gen_range(0..g.num_vertices())),
            fault_set: rng.gen_range(0..fault_sets),
        })
        .collect()
}

#[test]
fn batched_naive_and_truth_agree() {
    for (name, g) in [
        ("grid", generators::grid(4, 4)),
        ("cycle", generators::cycle(12)),
        ("star", generators::star(10)),
    ] {
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        let mut engine = engine_for(&g, 5, 9, EngineConfig::default());
        let fault_sets = random_fault_sets(&g, 4, 5, &mut rng);
        let queries = random_queries(&g, 120, fault_sets.len(), &mut rng);
        let req = BatchRequest {
            fault_sets: fault_sets.clone(),
            queries,
        };
        let batched = engine.execute(&req).unwrap();
        let naive = engine.execute_naive(&req).unwrap();
        assert_eq!(batched.results.len(), naive.results.len());
        for (i, (b, nv)) in batched.results.iter().zip(&naive.results).enumerate() {
            let q = &req.queries[i];
            assert_eq!(
                b.connected, nv.connected,
                "{name}: query {i} batched vs naive"
            );
            let mask = forbidden_mask(&g, &fault_sets[q.fault_set]);
            let truth = connected_avoiding(&g, q.s, q.t, &mask);
            assert_eq!(b.connected, truth, "{name}: query {i} vs ground truth");
        }
        // Batched ran one elimination per distinct fault set; naive ran one
        // per query.
        assert_eq!(batched.stats.eliminations, fault_sets.len());
        assert_eq!(naive.stats.eliminations, req.queries.len());
    }
}

#[test]
fn certificates_are_genuine_cuts() {
    let g = generators::grid(3, 4);
    let mut rng = StdRng::seed_from_u64(0xCE57);
    let mut engine = engine_for(
        &g,
        4,
        3,
        EngineConfig {
            collect_certificates: true,
            ..EngineConfig::default()
        },
    );
    let fault_sets = random_fault_sets(&g, 6, 4, &mut rng);
    let queries = random_queries(&g, 200, fault_sets.len(), &mut rng);
    let req = BatchRequest {
        fault_sets: fault_sets.clone(),
        queries,
    };
    let resp = engine.execute(&req).unwrap();
    let mut disconnections = 0;
    for (q, r) in req.queries.iter().zip(&resp.results) {
        if r.connected {
            assert!(r.certificate.is_none());
            continue;
        }
        disconnections += 1;
        let cert = r.certificate.as_ref().expect("disconnected carries a cut");
        assert!(!cert.is_empty());
        // The certificate must be a subset of the fault set…
        for e in cert {
            assert!(fault_sets[q.fault_set].contains(e), "cert edge outside F");
        }
        // …and removing it alone must separate s from t.
        let mask = forbidden_mask(&g, cert);
        assert!(
            !connected_avoiding(&g, q.s, q.t, &mask),
            "certificate does not cut ({:?}, {:?})",
            q.s,
            q.t
        );
    }
    assert!(disconnections > 0, "workload produced no disconnections");
}

#[test]
fn repeated_fault_sets_are_served_from_cache() {
    let g = generators::grid(4, 4);
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let mut engine = engine_for(&g, 6, 4, EngineConfig::default());
    let fault_sets = random_fault_sets(&g, 3, 6, &mut rng);
    let queries = random_queries(&g, 30, fault_sets.len(), &mut rng);
    let req = BatchRequest {
        fault_sets: fault_sets.clone(),
        queries,
    };
    let first = engine.execute(&req).unwrap();
    assert_eq!(first.stats.eliminations, 3);
    assert_eq!(first.stats.cache_hits, 0);
    let second = engine.execute(&req).unwrap();
    assert_eq!(second.stats.eliminations, 0);
    assert_eq!(second.stats.cache_hits, 3);
    // A permuted fault set is the same canonical set: still a hit.
    let mut permuted = fault_sets[0].clone();
    permuted.reverse();
    let req2 = BatchRequest {
        fault_sets: vec![permuted],
        queries: vec![ConnQuery {
            s: VertexId::new(0),
            t: VertexId::new(15),
            fault_set: 0,
        }],
    };
    let third = engine.execute(&req2).unwrap();
    assert_eq!(third.stats.eliminations, 0);
    assert_eq!(third.stats.cache_hits, 1);
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(a, b, "cache must not change answers");
    }
}

#[test]
fn zero_capacity_cache_still_answers_correctly() {
    let g = generators::cycle(10);
    let mut rng = StdRng::seed_from_u64(7);
    let mut engine = engine_for(
        &g,
        3,
        5,
        EngineConfig {
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    );
    let fault_sets = random_fault_sets(&g, 2, 3, &mut rng);
    let queries = random_queries(&g, 40, 2, &mut rng);
    let req = BatchRequest {
        fault_sets: fault_sets.clone(),
        queries,
    };
    let a = engine.execute(&req).unwrap();
    let b = engine.execute(&req).unwrap();
    assert_eq!(a.stats.eliminations, 2);
    assert_eq!(b.stats.eliminations, 2, "no cache, so re-eliminate");
    for (q, r) in req.queries.iter().zip(&a.results) {
        let mask = forbidden_mask(&g, &fault_sets[q.fault_set]);
        assert_eq!(r.connected, connected_avoiding(&g, q.s, q.t, &mask));
    }
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x, y);
    }
}

#[test]
fn bad_fault_set_index_is_an_error() {
    let g = generators::path(4);
    let mut engine = engine_for(&g, 2, 1, EngineConfig::default());
    let req = BatchRequest {
        fault_sets: vec![vec![EdgeId::new(0)]],
        queries: vec![ConnQuery {
            s: VertexId::new(0),
            t: VertexId::new(3),
            fault_set: 5,
        }],
    };
    assert!(matches!(
        engine.execute(&req),
        Err(EngineError::UnknownFaultSet {
            index: 5,
            available: 1
        })
    ));
}

#[test]
fn missing_edge_label_is_a_store_error() {
    let g = generators::path(4);
    let mut engine = engine_for(&g, 2, 1, EngineConfig::default());
    let req = BatchRequest {
        fault_sets: vec![vec![EdgeId::new(99)]],
        queries: vec![],
    };
    assert!(matches!(
        engine.execute(&req),
        Err(EngineError::Store(StoreError::Missing(_)))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random graphs, fault sets, and query mixes: the engine always agrees
    /// with a direct graph traversal.
    #[test]
    fn engine_matches_truth_on_random_workloads(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::connected_random(24, 0.12, 1, &mut rng);
        let f = 1 + (seed as usize) % 6;
        let mut engine = engine_for(&g, f, seed ^ 0xABC, EngineConfig::default());
        let fault_sets = random_fault_sets(&g, 3, f, &mut rng);
        let queries = random_queries(&g, 60, 3, &mut rng);
        let req = BatchRequest { fault_sets: fault_sets.clone(), queries };
        let resp = engine.execute(&req).unwrap();
        for (q, r) in req.queries.iter().zip(&resp.results) {
            let mask = forbidden_mask(&g, &fault_sets[q.fault_set]);
            prop_assert_eq!(r.connected, connected_avoiding(&g, q.s, q.t, &mask));
        }
    }
}

// ---------------------------------------------------------------------
// PR 5: zero-decode sidecar and the multi-worker engine.
// ---------------------------------------------------------------------

/// The zero-decode sidecar path and the wire-decoding path must be
/// bit-identical — results *and* certificates.
#[test]
fn sidecar_and_wire_paths_agree() {
    let g = generators::grid(5, 5);
    let scheme = CycleSpaceScheme::label(&g, 6, Seed::new(31)).unwrap();
    let mut with_sidecar = Engine::from_cycle_space(
        &scheme,
        EngineConfig {
            collect_certificates: true,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let mut wire_only = Engine::from_cycle_space(
        &scheme,
        EngineConfig {
            collect_certificates: true,
            use_sidecar: false,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0x51DE);
    for trial in 0..6 {
        let fault_sets = random_fault_sets(&g, 3, 6, &mut rng);
        let queries = random_queries(&g, 100, fault_sets.len(), &mut rng);
        let req = BatchRequest {
            fault_sets,
            queries,
        };
        let a = with_sidecar.execute(&req).unwrap();
        let b = wire_only.execute(&req).unwrap();
        assert_eq!(a.results, b.results, "trial {trial}");
        let an = with_sidecar.execute_naive(&req).unwrap();
        let bn = wire_only.execute_naive(&req).unwrap();
        assert_eq!(an.results, bn.results, "naive trial {trial}");
        // Batched certificates come back in canonical (sorted) fault order,
        // naive ones in request order — compare them as sets, and the
        // connectivity verdicts exactly.
        for (qa, qn) in a.results.iter().zip(&an.results) {
            assert_eq!(qa.connected, qn.connected, "batched vs naive trial {trial}");
            match (&qa.certificate, &qn.certificate) {
                (None, None) => {}
                (Some(ca), Some(cn)) => {
                    let mut ca = ca.clone();
                    let mut cn = cn.clone();
                    ca.sort();
                    cn.sort();
                    assert_eq!(ca, cn, "certificate sets trial {trial}");
                }
                other => panic!("certificate presence mismatch: {other:?}"),
            }
        }
    }
    // The sidecar really decoded the whole store.
    assert_eq!(
        with_sidecar.store().sidecar().decoded_vertices(),
        g.num_vertices()
    );
    assert_eq!(
        with_sidecar.store().sidecar().decoded_edges(),
        g.num_edges()
    );
}

/// `ParEngine` must return bit-identical results to the serial engine on
/// the same request stream — across batches, so per-worker caches are
/// warm and cold at different times.
#[test]
fn par_engine_matches_serial_engine() {
    use ftl_engine::ParEngine;
    let g = generators::grid(5, 4);
    let scheme = CycleSpaceScheme::label(&g, 5, Seed::new(77)).unwrap();
    for workers in [1usize, 2, 3, 7] {
        let mut par =
            ParEngine::from_cycle_space(&scheme, EngineConfig::default(), workers).unwrap();
        let mut serial = par.serial_engine();
        let mut rng = StdRng::seed_from_u64(0xBA5E + workers as u64);
        for batch in 0..5 {
            let fault_sets = random_fault_sets(&g, 3, 5, &mut rng);
            let queries = random_queries(&g, 64 + batch * 17, fault_sets.len(), &mut rng);
            let req = BatchRequest {
                fault_sets,
                queries,
            };
            let p = par.execute(&req).unwrap();
            let s = serial.execute(&req).unwrap();
            assert_eq!(p.results, s.results, "workers {workers} batch {batch}");
            assert_eq!(p.stats.queries, s.stats.queries);
            assert_eq!(p.stats.fault_sets, s.stats.fault_sets);
        }
        let stats = par.worker_stats();
        assert_eq!(stats.len(), workers);
        let total: u64 = stats.iter().map(|w| w.queries).sum();
        assert_eq!(total, (0..5).map(|b| 64 + b * 17).sum::<usize>() as u64);
    }
}

/// M plain threads hammering one frozen `Arc<LabelStore>` — each with its
/// own serving core — must all reproduce the serial engine's answers.
/// This is the lock-free-reads contract of the store, exercised with real
/// threads regardless of the `parallel` feature.
#[test]
fn threads_sharing_one_frozen_store_agree_with_serial() {
    use std::sync::Arc;
    let g = generators::grid(4, 5);
    let scheme = CycleSpaceScheme::label(&g, 4, Seed::new(12)).unwrap();
    let mut reference = Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap();
    let store = reference.shared_store();
    let mut rng = StdRng::seed_from_u64(0xC0C0);
    let fault_sets = random_fault_sets(&g, 4, 4, &mut rng);
    let queries = random_queries(&g, 200, fault_sets.len(), &mut rng);
    let req = Arc::new(BatchRequest {
        fault_sets,
        queries,
    });
    let expected = Arc::new(reference.execute(&req).unwrap().results);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            let req = Arc::clone(&req);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut engine = Engine::with_shared(store, EngineConfig::default());
                for _ in 0..3 {
                    let resp = engine.execute(&req).unwrap();
                    assert_eq!(resp.results, *expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }
}

/// A fault set naming a missing edge must be rejected by BOTH engines
/// even when no query references it (ParEngine resolves unreferenced
/// sets for validation parity with the serial engine).
#[test]
fn unreferenced_bad_fault_set_rejected_by_both_engines() {
    use ftl_engine::ParEngine;
    let g = generators::grid(3, 3);
    let scheme = CycleSpaceScheme::label(&g, 3, Seed::new(4)).unwrap();
    let req = BatchRequest {
        fault_sets: vec![vec![EdgeId::new(0)], vec![EdgeId::new(999_999)]],
        queries: vec![ConnQuery {
            s: VertexId::new(0),
            t: VertexId::new(8),
            fault_set: 0, // the bad set (index 1) is never referenced
        }],
    };
    let mut serial = Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap();
    let serial_err = serial.execute(&req).unwrap_err();
    assert!(matches!(
        serial_err,
        EngineError::Store(StoreError::Missing(_))
    ));
    let mut par = ParEngine::from_cycle_space(&scheme, EngineConfig::default(), 2).unwrap();
    assert_eq!(par.execute(&req).unwrap_err(), serial_err);
}

/// `freeze_wire_only` skips the sidecar entirely; a wire-path engine over
/// it answers identically to a sidecar engine over the same labels.
#[test]
fn wire_only_freeze_serves_identically_without_sidecar() {
    use ftl_engine::{LabelStoreBuilder, StoreKey};
    let g = generators::grid(4, 4);
    let scheme = CycleSpaceScheme::label(&g, 4, Seed::new(6)).unwrap();
    let mut builder = LabelStoreBuilder::new(4);
    for i in 0..g.num_vertices() {
        let v = VertexId::new(i);
        builder
            .put_vertex_label(v, &scheme.vertex_label(v))
            .unwrap();
    }
    for i in 0..g.num_edges() {
        let e = EdgeId::new(i);
        builder.put_edge_label(e, &scheme.edge_label(e)).unwrap();
    }
    let store = builder.freeze_wire_only();
    assert_eq!(store.sidecar().decoded_vertices(), 0);
    assert_eq!(store.sidecar().decoded_edges(), 0);
    assert!(store
        .get_bytes(StoreKey::vertex(VertexId::new(0)))
        .is_some());
    let mut wire_engine = Engine::new(
        store,
        EngineConfig {
            use_sidecar: false,
            ..EngineConfig::default()
        },
    );
    let mut sidecar_engine = Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xF00);
    let fault_sets = random_fault_sets(&g, 2, 4, &mut rng);
    let queries = random_queries(&g, 80, fault_sets.len(), &mut rng);
    let req = BatchRequest {
        fault_sets,
        queries,
    };
    assert_eq!(
        wire_engine.execute(&req).unwrap().results,
        sidecar_engine.execute(&req).unwrap().results
    );
}
