//! The runtime twin of ftl-analyzer's FTL001 (no-alloc hot path): a
//! counting global allocator proves that a warmed-up serving loop —
//! cache-hot fault sets, sidecar-served lookups, a reused
//! [`BatchResponse`] via [`Engine::execute_into`] — performs **zero** heap
//! allocations per batch. The static rule says the hot closure *cannot*
//! allocate; this test says the whole serving path *does not*.
//!
//! The measured loop runs with `ftl-obs` instrumentation **enabled** (the
//! default feature set) and records into it explicitly — counters, stage
//! histograms, and a live [`ftl_obs::Span`] — so the zero-allocation
//! claim covers the observability layer, not just the engine.

// Test code: panicking asserts and progress prints are the point here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::print_stdout
)]
// The one sanctioned `unsafe` in the workspace: implementing `GlobalAlloc`
// for the counting shim. It delegates straight to `System`.
#![allow(unsafe_code)]

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{BatchRequest, BatchResponse, ConnQuery, Engine, EngineConfig};
use ftl_graph::{generators, EdgeId, VertexId};
use ftl_seeded::Seed;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// `System`, plus a global count of allocation *events* (alloc + realloc;
/// frees are not counted — the invariant is "no new memory", not "no
/// churn").
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// Relaxed is enough: the test reads the counter on the same thread that
// allocates, and only ever compares before/after deltas.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warmed_sidecar_batch_allocates_nothing() {
    // A grid big enough to have interesting fault sets, small enough that
    // the test is instant.
    let g = generators::grid(6, 6);
    let f = 4;
    let scheme = CycleSpaceScheme::label(&g, f, Seed::new(7)).unwrap();
    let config = EngineConfig::default(); // sidecar on, certificates off
    let mut engine = Engine::from_cycle_space(&scheme, config).unwrap();

    // A batch with repeated fault sets and a spread of endpoints.
    let fault_sets: Vec<Vec<EdgeId>> = vec![
        vec![EdgeId::new(0), EdgeId::new(7)],
        vec![EdgeId::new(3), EdgeId::new(11), EdgeId::new(19)],
    ];
    let mut queries = Vec::new();
    for i in 0..24 {
        queries.push(ConnQuery {
            s: VertexId::new(i % g.num_vertices()),
            t: VertexId::new((i * 5 + 1) % g.num_vertices()),
            fault_set: i % fault_sets.len(),
        });
    }
    let req = BatchRequest {
        fault_sets,
        queries,
    };

    // Warm up: first run eliminates both fault sets (allocates: basis
    // vectors, cache entries), grows the response buffers to the
    // high-water mark, and touches every scratch arena.
    let mut resp = BatchResponse::default();
    for _ in 0..3 {
        engine.execute_into(&req, &mut resp).unwrap();
    }
    assert_eq!(resp.stats.queries, req.queries.len());
    assert_eq!(resp.stats.cache_hits, req.fault_sets.len(), "warm cache");
    let expected = resp.results.clone();

    // The measured runs: cache-hot, sidecar-served, response reused —
    // and instrumented. `execute_into` itself records batch counters and
    // epoch gauges into the global registry; on top of that the loop
    // records a span, a histogram sample, and a counter bump per batch to
    // pin down that the obs record path is allocation-free too.
    let obs = ftl_obs::global();
    let before = alloc_count();
    for _ in 0..10 {
        let _span = ftl_obs::Span::enter(&obs.stages, ftl_obs::Stage::Answer);
        engine.execute_into(&req, &mut resp).unwrap();
        obs.engine.queries.add(resp.stats.queries as u64);
        obs.stages
            .record(ftl_obs::Stage::ResponseWrite, resp.stats.queries as u64);
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "warmed-up execute_into allocated {delta} time(s) across 10 batches — \
         the zero-alloc serving loop regressed (run \
         `cargo run -p ftl-analyzer -- --check` for the static view)"
    );
    assert_eq!(resp.results, expected, "reused response must stay correct");
}

#[test]
fn first_run_does_allocate_which_proves_the_counter_works() {
    let before = alloc_count();
    let v: Vec<u64> = (0..100).collect();
    assert!(alloc_count() > before, "counter must observe allocations");
    drop(v);
}
