//! The grouped batch-submission entry point: `execute_grouped` agrees
//! with `execute`, eliminates once per group, and isolates failures —
//! per group on the serial engine, per worker chunk on `ParEngine`.

// Test code: panicking asserts are the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{
    BatchRequest, ConnQuery, Engine, EngineConfig, EngineError, FaultSetBatch, ParEngine,
};
use ftl_graph::{generators, EdgeId, VertexId};
use ftl_seeded::Seed;

fn scheme() -> (ftl_graph::Graph, CycleSpaceScheme) {
    let g = generators::grid(6, 6);
    let scheme = CycleSpaceScheme::label(&g, 8, Seed::new(77)).expect("grid is connected");
    (g, scheme)
}

/// Groups covering three distinct fault sets, eight queries each.
fn groups(g: &ftl_graph::Graph) -> Vec<FaultSetBatch> {
    let n = g.num_vertices();
    let sets = [
        vec![EdgeId::new(0), EdgeId::new(5)],
        vec![EdgeId::new(11), EdgeId::new(3), EdgeId::new(19)],
        vec![EdgeId::new(30)],
    ];
    sets.iter()
        .enumerate()
        .map(|(i, faults)| FaultSetBatch {
            faults: faults.clone(),
            queries: (0..8)
                .map(|q| {
                    (
                        VertexId::new((i * 7 + q * 3) % n),
                        VertexId::new((i * 11 + q * 5 + 1) % n),
                    )
                })
                .collect(),
        })
        .collect()
}

#[test]
fn grouped_agrees_with_indexed_execute() {
    let (g, scheme) = scheme();
    let mut engine = Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap();
    let groups = groups(&g);

    // The same workload phrased as an indexed BatchRequest.
    let req = BatchRequest {
        fault_sets: groups.iter().map(|gr| gr.faults.clone()).collect(),
        queries: groups
            .iter()
            .enumerate()
            .flat_map(|(i, gr)| {
                gr.queries
                    .iter()
                    .map(move |&(s, t)| ConnQuery { s, t, fault_set: i })
            })
            .collect(),
    };
    let indexed = engine.execute(&req).unwrap();
    let grouped = engine.execute_grouped(&groups);

    let flat: Vec<_> = grouped
        .groups
        .iter()
        .flat_map(|gr| gr.as_ref().unwrap().iter())
        .map(|q| q.as_ref().unwrap().clone())
        .collect();
    assert_eq!(flat, indexed.results);
    assert_eq!(grouped.stats.queries, indexed.stats.queries);
    assert_eq!(grouped.stats.fault_sets, 3);
}

#[test]
fn par_grouped_matches_serial_and_eliminates_once_per_group() {
    let (g, scheme) = scheme();
    let config = EngineConfig::default();
    let par_store = Engine::from_cycle_space(&scheme, config)
        .unwrap()
        .shared_store();
    for workers in [1, 2, 3, 5] {
        let mut par = ParEngine::new(par_store.clone(), config, workers);
        let mut serial = par.serial_engine();
        let groups = groups(&g);
        let pr = par.execute_grouped(&groups);
        let sr = serial.execute_grouped(&groups);
        for (p, s) in pr.groups.iter().zip(&sr.groups) {
            assert_eq!(p.as_ref().unwrap(), s.as_ref().unwrap());
        }
        // Group-granular chunking: each distinct fault set is eliminated
        // exactly once, on exactly one worker — never duplicated.
        assert_eq!(pr.stats.eliminations, 3, "workers = {workers}");
    }
}

#[test]
fn grouped_isolates_bad_fault_set_to_its_own_group() {
    let (g, scheme) = scheme();
    let mut engine = Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap();
    let mut groups = groups(&g);
    groups[1].faults = vec![EdgeId::new(999_999)]; // no such edge
    let resp = engine.execute_grouped(&groups);
    assert!(resp.groups[0].is_ok());
    assert!(matches!(resp.groups[1], Err(EngineError::Store(_))));
    assert!(resp.groups[2].is_ok());
}

/// An out-of-range *vertex* id fails only its own query slot: the other
/// queries of the same group (which merges many requests in a serving
/// front end) still get their answers.
#[test]
fn grouped_isolates_bad_vertex_to_its_own_query() {
    let (g, scheme) = scheme();
    let mut engine = Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap();
    let mut groups = groups(&g);
    groups[0].queries[3] = (VertexId::new(999_999), VertexId::new(0)); // no such vertex
    let resp = engine.execute_grouped(&groups);
    let queries = resp.groups[0].as_ref().unwrap();
    for (i, q) in queries.iter().enumerate() {
        if i == 3 {
            assert!(matches!(q, Err(EngineError::Store(_))));
        } else {
            assert!(q.is_ok(), "query {i} poisoned by a neighbor's bad vertex");
        }
    }
    assert!(resp.groups[1].is_ok());
    assert!(resp.groups[2].is_ok());
}

#[test]
fn par_grouped_contains_worker_panic_to_its_chunk() {
    let (g, scheme) = scheme();
    let chaos = EdgeId::new(0);
    let config = EngineConfig {
        chaos_panic_edge: Some(chaos),
        ..EngineConfig::default()
    };
    let mut par = ParEngine::from_cycle_space(&scheme, config, 3).unwrap();
    let groups = groups(&g); // group 0 contains edge 0 → panics its worker
    let resp = par.execute_grouped(&groups);
    assert!(matches!(
        resp.groups[0],
        Err(EngineError::WorkerPanicked { .. })
    ));
    // With 3 workers and 3 groups each worker gets one group: the other
    // two chunks complete and keep their answers.
    assert!(resp.groups[1].is_ok());
    assert!(resp.groups[2].is_ok());
    // The engine survives and the panicked worker's core was rebuilt: a
    // chaos-free replay fully succeeds.
    let calm: Vec<FaultSetBatch> = groups
        .iter()
        .skip(1)
        .map(|gr| FaultSetBatch {
            faults: gr.faults.clone(),
            queries: gr.queries.clone(),
        })
        .collect();
    let resp = par.execute_grouped(&calm);
    assert!(resp.groups.iter().all(|r| r.is_ok()));
}
