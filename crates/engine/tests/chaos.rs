//! Fault-injection (chaos) suite for the epoch-versioned serving stack.
//!
//! Every test here injects a failure the serving path must survive
//! *gracefully*: corrupted / truncated / length-lying wire records,
//! worker panics mid-batch, readers racing snapshot swaps, adversarial
//! targeted churn, and stale-cache hazards across epochs. "Gracefully"
//! means a clean `EngineError` (never a crash), unaffected sibling
//! queries, and 100% agreement with BFS ground truth after every swap.

// Test code: panicking asserts and progress prints are the point here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::print_stdout
)]
use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{
    corrupt_random_bytes, full_store_of, oversize_declared_bits, plan_edge_removals,
    plan_vertex_removals, run_churn_scenario, truncate_record, BatchRequest, ChurnConfig,
    ConnQuery, Engine, EngineConfig, EngineError, EpochStore, LiveStore, ParEngine, RemovalModel,
    StoreKey,
};
use ftl_graph::traversal::connected_avoiding;
use ftl_graph::{generators, EdgeId, Graph, VertexId};
use ftl_labels::wire::WireLabel;
use ftl_seeded::Seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A live store plus an epoch-following serial engine over it.
fn live_setup(g: &Graph, f: usize, seed: u64, config: EngineConfig) -> (LiveStore, Engine) {
    let store = LiveStore::new(g, f, Seed::new(seed), config).unwrap();
    let engine = Engine::over_epochs(Arc::clone(store.epochs()), config);
    (store, engine)
}

/// One-fault-set batch helper.
fn batch(fs: Vec<EdgeId>, pairs: &[(usize, usize)]) -> BatchRequest {
    BatchRequest {
        fault_sets: vec![fs],
        queries: pairs
            .iter()
            .map(|&(s, t)| ConnQuery {
                s: VertexId::new(s),
                t: VertexId::new(t),
                fault_set: 0,
            })
            .collect(),
    }
}

/// A non-tree (hence removable-without-disconnect) alive edge.
fn non_tree_edge(store: &LiveStore) -> EdgeId {
    store
        .live()
        .alive_edges()
        .find(|&e| !store.live().edge_label(e).is_tree)
        .expect("graph has a cycle")
}

// ---------------------------------------------------------------- wire chaos

/// Corrupt records published through a delta swap produce clean errors on
/// the queries that touch them and leave sibling fault sets unharmed.
#[test]
fn corrupted_record_errors_cleanly_and_spares_other_queries() {
    for use_sidecar in [true, false] {
        let config = EngineConfig {
            use_sidecar,
            ..EngineConfig::default()
        };
        let g = generators::grid(5, 5);
        let scheme = CycleSpaceScheme::label(&g, 4, Seed::new(11)).unwrap();
        let good = Arc::new(ftl_engine::store_from_cycle_space(&scheme, 8).unwrap());
        let victim = EdgeId::new(7);
        // Re-encode the victim's record with heavy random corruption and
        // splice it in through the delta path — the way a disk or network
        // flip would reach a serving snapshot.
        let mut bytes = scheme.edge_label(victim).to_wire();
        let smear = bytes.len() * 2;
        corrupt_random_bytes(&mut bytes, smear, Seed::new(0xBAD));
        let bad = good
            .delta_freeze(&[(StoreKey::edge(victim), bytes)], &[])
            .unwrap();
        let epochs = Arc::new(EpochStore::new(good));
        let mut engine = Engine::over_epochs(Arc::clone(&epochs), config);
        // Pre-swap: the victim decodes fine.
        let pre = engine.execute(&batch(vec![victim], &[(0, 24)])).unwrap();
        assert_eq!(pre.results.len(), 1);
        epochs.publish(Arc::new(bad));
        // Post-swap: the fault set naming the corrupt record errors
        // cleanly — no panic, and the error is a store error (or, if the
        // corruption happened to keep the record decodable, the answer
        // still matches ground truth).
        match engine.execute(&batch(vec![victim], &[(0, 24)])) {
            Err(EngineError::Store(_)) => {}
            Err(other) => panic!("unexpected error kind: {other:?}"),
            Ok(resp) => {
                let mask = ftl_graph::traversal::forbidden_mask(&g, &[victim]);
                assert_eq!(
                    resp.results[0].connected,
                    connected_avoiding(&g, VertexId::new(0), VertexId::new(24), &mask)
                );
            }
        }
        // A sibling fault set that never touches the corrupt record still
        // serves correctly from the same snapshot.
        let clean = EdgeId::new(20);
        let resp = engine.execute(&batch(vec![clean], &[(0, 24)])).unwrap();
        let mask = ftl_graph::traversal::forbidden_mask(&g, &[clean]);
        assert_eq!(
            resp.results[0].connected,
            connected_avoiding(&g, VertexId::new(0), VertexId::new(24), &mask),
            "sidecar={use_sidecar}: clean query infected by corrupt neighbor"
        );
    }
}

/// Truncated and length-lying records are rejected with errors, never
/// panics, on both serving paths.
#[test]
fn truncated_and_oversized_records_error_not_panic() {
    for use_sidecar in [true, false] {
        let config = EngineConfig {
            use_sidecar,
            ..EngineConfig::default()
        };
        let g = generators::grid(4, 4);
        let scheme = CycleSpaceScheme::label(&g, 3, Seed::new(12)).unwrap();
        let good = Arc::new(ftl_engine::store_from_cycle_space(&scheme, 8).unwrap());
        let victim = EdgeId::new(3);
        let wire = scheme.edge_label(victim).to_wire();
        let corruptions: Vec<Vec<u8>> = vec![
            {
                let mut b = wire.clone();
                let keep = b.len().saturating_sub(2);
                truncate_record(&mut b, keep);
                b
            },
            {
                let mut b = wire.clone();
                truncate_record(&mut b, 3); // shorter than the header
                b
            },
            {
                let mut b = wire.clone();
                assert!(oversize_declared_bits(&mut b, 4096));
                b
            },
        ];
        for (i, bad_bytes) in corruptions.into_iter().enumerate() {
            let bad = good
                .delta_freeze(&[(StoreKey::edge(victim), bad_bytes)], &[])
                .unwrap();
            let mut engine = Engine::with_shared(Arc::new(bad), config);
            let out = engine.execute(&batch(vec![victim], &[(0, 15)]));
            assert!(
                matches!(out, Err(EngineError::Store(_))),
                "sidecar={use_sidecar} corruption #{i}: expected clean store error, got {out:?}"
            );
        }
    }
}

// -------------------------------------------------------------- panic chaos

/// A worker panic mid-batch is contained: the batch fails with
/// `WorkerPanicked`, the process survives, and the engine serves the next
/// batch correctly on a rebuilt core.
#[test]
fn worker_panic_is_contained_and_engine_recovers() {
    let g = generators::grid(5, 5);
    let scheme = CycleSpaceScheme::label(&g, 4, Seed::new(21)).unwrap();
    let chaos_edge = EdgeId::new(5);
    let config = EngineConfig {
        chaos_panic_edge: Some(chaos_edge),
        ..EngineConfig::default()
    };
    let mut par = ParEngine::from_cycle_space(&scheme, config, 4).unwrap();
    // Any fault set containing the chaos edge detonates its resolver.
    let out = par.execute(&batch(
        vec![chaos_edge, EdgeId::new(9)],
        &[(0, 24), (3, 21)],
    ));
    match out {
        Err(EngineError::WorkerPanicked { worker, message }) => {
            assert!(worker < 4);
            assert!(
                message.contains("chaos"),
                "lost the panic payload: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The engine — same instance, cores rebuilt — keeps serving batches
    // that avoid the tripwire, bit-identical to a fresh serial engine.
    let req = batch(
        vec![EdgeId::new(9), EdgeId::new(30)],
        &[(0, 24), (3, 21), (7, 18)],
    );
    let resp = par
        .execute(&req)
        .expect("engine must recover after a contained panic");
    let mut serial = Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap();
    let reference = serial.execute(&req).unwrap();
    assert_eq!(resp.results, reference.results);
    // And the tripwire still trips — containment is repeatable, not
    // one-shot.
    assert!(matches!(
        par.execute(&batch(vec![chaos_edge], &[(0, 24)])),
        Err(EngineError::WorkerPanicked { .. })
    ));
    let resp2 = par.execute(&req).unwrap();
    assert_eq!(resp2.results, reference.results);
}

// --------------------------------------------------------------- swap chaos

/// Readers serving batches while the writer swaps epochs underneath them
/// never error, never block on the publisher, and never observe a
/// half-applied snapshot (every answer stays `connected` because only
/// non-bridge edges are removed).
#[test]
fn mid_swap_readers_serve_consistent_snapshots() {
    let g = generators::grid(8, 8);
    let config = EngineConfig::default();
    let mut store = LiveStore::new(&g, 4, Seed::new(31), config).unwrap();
    let plan = plan_edge_removals(store.live(), 20, RemovalModel::Random, Seed::new(32));
    let epochs = Arc::clone(store.epochs());
    let n = g.num_vertices();
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let epochs = Arc::clone(&epochs);
                scope.spawn(move || {
                    let mut engine = Engine::over_epochs(epochs, config);
                    let mut rng = Seed::new(40 + r).stream();
                    let mut last_epoch = 0u64;
                    for _ in 0..60 {
                        let pairs: Vec<(usize, usize)> = (0..8)
                            .map(|_| ((rng() % n as u64) as usize, (rng() % n as u64) as usize))
                            .collect();
                        let resp = engine
                            .execute(&batch(Vec::new(), &pairs))
                            .expect("reader must never fail across swaps");
                        // No vertex is ever removed and removals skip
                        // bridges, so every snapshot is fully connected.
                        assert!(resp.results.iter().all(|q| q.connected));
                        // Epochs are observed in publication order.
                        assert!(resp.stats.epoch >= last_epoch);
                        last_epoch = resp.stats.epoch;
                    }
                    last_epoch
                })
            })
            .collect();
        // Writer: swap epochs as fast as the removals allow.
        for e in plan {
            let _ = store.remove_edge(e);
        }
        for h in readers {
            h.join().expect("reader panicked");
        }
    });
    assert!(
        store.epochs().current().number() > 1,
        "no swap ever happened"
    );
}

/// Epoch numbers increase monotonically with each publishing removal, the
/// engine's batch stats report the epoch they were served at, and a failed
/// removal publishes nothing.
#[test]
fn epoch_numbers_are_monotone_and_stamped_into_stats() {
    let g = generators::grid(5, 5);
    let (mut store, mut engine) = live_setup(&g, 4, 41, EngineConfig::default());
    let mut seen = Vec::new();
    for _ in 0..4 {
        let resp = engine.execute(&batch(Vec::new(), &[(0, 24)])).unwrap();
        seen.push(resp.stats.epoch);
        let e = non_tree_edge(&store);
        let before = store.epochs().current().number();
        let report = store.remove_edge(e).unwrap();
        assert_eq!(report.epoch, before + 1);
    }
    assert!(
        seen.windows(2).all(|w| w[0] < w[1]),
        "epochs not monotone: {seen:?}"
    );
    // A rejected removal (bridge) leaves the published epoch untouched.
    let tree = store
        .live()
        .alive_edges()
        .find(|&e| store.live().edge_label(e).is_tree)
        .unwrap();
    let before = store.epochs().current().number();
    if store.remove_edge(tree).is_err() {
        assert_eq!(store.epochs().current().number(), before);
    }
}

// -------------------------------------------------------------- churn chaos

/// Adversarial targeted removal rounds: highest-degree victims first,
/// every answer checked against BFS truth, and after the final swap every
/// alive pair is reachable with no transient faults.
#[test]
fn targeted_churn_rounds_keep_perfect_reachability() {
    let g = generators::barabasi_albert(150, 3, &mut StdRng::seed_from_u64(51));
    let config = EngineConfig::default();
    let mut store = LiveStore::new(&g, 4, Seed::new(52), config).unwrap();
    let mut engine = ParEngine::over_epochs(Arc::clone(store.epochs()), config, 4);
    let mut cfg = ChurnConfig::new("chaos-targeted", 4);
    cfg.model = RemovalModel::Targeted;
    cfg.rounds = 6;
    cfg.edge_removals_per_round = 10;
    cfg.vertex_removals_per_round = 3;
    let report = run_churn_scenario(&mut store, &mut engine, &cfg).unwrap();
    assert_eq!(
        report.mismatches, 0,
        "engine diverged from ground truth under attack"
    );
    assert!(report.final_epoch > 1);
    // Post-swap, zero-fault reachability is 100% over the survivors.
    let live = store.live();
    let alive: Vec<VertexId> = live.alive_vertices().collect();
    let mut rng = Seed::new(53).stream();
    let pairs: Vec<(usize, usize)> = (0..50)
        .map(|_| {
            (
                alive[(rng() % alive.len() as u64) as usize].index(),
                alive[(rng() % alive.len() as u64) as usize].index(),
            )
        })
        .collect();
    let resp = engine.execute(&batch(Vec::new(), &pairs)).unwrap();
    assert!(
        resp.results.iter().all(|q| q.connected),
        "post-swap reachability below 100%"
    );
}

/// The delta-freeze path and a from-scratch rebuild of the same surviving
/// topology are bit-identical: every surviving record byte-for-byte, every
/// removed key absent, and every query answer (certificates included)
/// equal.
#[test]
fn delta_swaps_match_full_rebuild_bit_for_bit() {
    let g = generators::grid(7, 7);
    let config = EngineConfig {
        collect_certificates: true,
        ..EngineConfig::default()
    };
    let mut store = LiveStore::new(&g, 4, Seed::new(61), config).unwrap();
    for round in 0..4 {
        let seed = Seed::new(62).derive(round);
        let edges = plan_edge_removals(store.live(), 3, RemovalModel::Random, seed);
        store.remove_edges(&edges).unwrap();
        let vertices = plan_vertex_removals(store.live(), 1, RemovalModel::Random, seed.derive(1));
        store.remove_vertices(&vertices).unwrap();
    }
    let live = store.live();
    let delta_built = Arc::clone(store.epochs().current().store());
    let rebuilt = Arc::new(full_store_of(live, &config).unwrap());
    // Record-level identity over the whole keyspace.
    for v in 0..g.num_vertices() {
        let key = StoreKey::vertex(VertexId::new(v));
        assert_eq!(
            delta_built.get_bytes(key),
            rebuilt.get_bytes(key),
            "vertex {v}"
        );
    }
    for e in 0..g.num_edges() {
        let key = StoreKey::edge(EdgeId::new(e));
        assert_eq!(
            delta_built.get_bytes(key),
            rebuilt.get_bytes(key),
            "edge {e}"
        );
    }
    // Query-level identity, certificates included.
    let alive_edges: Vec<EdgeId> = live.alive_edges().collect();
    let alive_vertices: Vec<VertexId> = live.alive_vertices().collect();
    let mut rng = Seed::new(63).stream();
    let fault_sets: Vec<Vec<EdgeId>> = (0..4)
        .map(|_| {
            let mut fs = Vec::new();
            while fs.len() < 4 {
                let e = alive_edges[(rng() % alive_edges.len() as u64) as usize];
                if !fs.contains(&e) {
                    fs.push(e);
                }
            }
            fs
        })
        .collect();
    let queries: Vec<ConnQuery> = (0..120)
        .map(|i| ConnQuery {
            s: alive_vertices[(rng() % alive_vertices.len() as u64) as usize],
            t: alive_vertices[(rng() % alive_vertices.len() as u64) as usize],
            fault_set: i % fault_sets.len(),
        })
        .collect();
    let req = BatchRequest {
        fault_sets,
        queries,
    };
    let mut over_delta = Engine::with_shared(delta_built, config);
    let mut over_rebuilt = Engine::with_shared(rebuilt, config);
    let a = over_delta.execute(&req).unwrap();
    let b = over_rebuilt.execute(&req).unwrap();
    assert_eq!(a.results, b.results);
}

/// Regression: the elimination cache must not serve a basis eliminated
/// against an older epoch's labels. Same fault set, same engine, topology
/// changed underneath — the post-swap answer must follow the new truth.
#[test]
fn elimination_cache_never_crosses_epochs() {
    let g = generators::cycle(8);
    let (mut store, mut engine) = live_setup(&g, 3, 71, EngineConfig::default());
    // The transient fault: any alive edge that is NOT the one we will
    // structurally remove.
    let structural = non_tree_edge(&store);
    let fault = store
        .live()
        .alive_edges()
        .find(|&e| e != structural)
        .unwrap();
    let (s, t) = {
        let edge = g.edge(fault);
        (edge.u().index(), edge.v().index())
    };
    // Pre-churn: the cycle minus one faulted edge is still connected —
    // and this primes the cache for exactly this fault set.
    let pre = engine.execute(&batch(vec![fault], &[(s, t)])).unwrap();
    assert!(pre.results[0].connected);
    // Structurally remove the other edge: the cycle becomes a path, and
    // the same transient fault now disconnects its endpoints.
    store.remove_edge(structural).unwrap();
    let mask = {
        let mut m = store.live().forbidden_base();
        m[fault.index()] = true;
        m
    };
    let truth = connected_avoiding(&g, VertexId::new(s), VertexId::new(t), &mask);
    assert!(!truth, "test graph did not discriminate");
    let post = engine.execute(&batch(vec![fault], &[(s, t)])).unwrap();
    assert_eq!(
        post.results[0].connected, truth,
        "stale cached elimination served across an epoch swap"
    );
}

// ---------------------------------------------------------------- soak mode

/// Time-boxed churn soak: repeats randomized churn scenarios (fresh graph,
/// fresh seeds each iteration) until the `CHURN_SOAK_MS` budget runs out,
/// requiring perfect ground-truth agreement throughout. Run explicitly:
/// `CHURN_SOAK_MS=30000 cargo test -p ftl-engine --test chaos -- --ignored`.
#[test]
#[ignore = "time-boxed soak; enable via CHURN_SOAK_MS"]
fn churn_soak() {
    let budget_ms: u64 = std::env::var("CHURN_SOAK_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let start = std::time::Instant::now();
    let mut iteration = 0u64;
    while start.elapsed().as_millis() < budget_ms as u128 {
        let mut rng = StdRng::seed_from_u64(0x50AC ^ iteration);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let config = EngineConfig::default();
        let mut store = LiveStore::new(&g, 4, Seed::new(iteration), config).unwrap();
        let mut engine = ParEngine::over_epochs(Arc::clone(store.epochs()), config, 4);
        let mut cfg = ChurnConfig::new("soak", 4);
        cfg.seed = iteration;
        cfg.rounds = 10;
        cfg.edge_removals_per_round = 8;
        cfg.vertex_removals_per_round = 2;
        cfg.model = if iteration.is_multiple_of(2) {
            RemovalModel::Random
        } else {
            RemovalModel::Targeted
        };
        let report = run_churn_scenario(&mut store, &mut engine, &cfg).unwrap();
        assert_eq!(
            report.mismatches, 0,
            "soak iteration {iteration} diverged from ground truth"
        );
        iteration += 1;
    }
    assert!(iteration > 0, "soak budget too small to run one iteration");
    println!(
        "churn_soak: {iteration} iterations in {:?}",
        start.elapsed()
    );
}
