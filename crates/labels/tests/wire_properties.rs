//! Property tests for the wire-format primitives: writer/reader round-trips
//! at arbitrary bit granularities, and header-corruption rejection.

// Test code: panicking asserts and progress prints are the point here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::print_stdout
)]
use ftl_gf2::BitVec;
use ftl_labels::wire::{WireReader, WireWriter, HEADER_BYTES};
use ftl_labels::{AncestryLabel, LabelKind, WireLabel};
use proptest::prelude::*;

proptest! {
    /// Any sequence of (value, width) writes reads back exactly.
    #[test]
    fn writes_read_back(fields in proptest::collection::vec((any::<u64>(), 1usize..=64), 0..40)) {
        let mut w = WireWriter::new();
        let mut expected = Vec::new();
        for &(raw, width) in &fields {
            let value = if width == 64 { raw } else { raw & ((1u64 << width) - 1) };
            w.write_word(value, width);
            expected.push((value, width));
        }
        let bytes = w.finish(LabelKind::Ancestry);
        let (kind, mut r) = WireReader::open(&bytes).unwrap();
        prop_assert_eq!(kind, LabelKind::Ancestry);
        for &(value, width) in &expected {
            prop_assert_eq!(r.read_word(width).unwrap(), value);
        }
        r.close().unwrap();
    }

    /// Length-prefixed bit vectors round-trip at any length and offset.
    #[test]
    fn len_bits_roundtrip(offset in 0usize..70, bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let v = BitVec::from_bits(&bits);
        let mut w = WireWriter::new();
        w.write_word(0, offset.min(64));
        w.write_len_bits(&v);
        let bytes = w.finish(LabelKind::Route);
        let (_, mut r) = WireReader::open(&bytes).unwrap();
        r.read_word(offset.min(64)).unwrap();
        prop_assert_eq!(r.read_len_bits().unwrap(), v);
        r.close().unwrap();
    }

    /// Ancestry labels round-trip for all field values.
    #[test]
    fn ancestry_roundtrip(pre in any::<u32>(), post in any::<u32>()) {
        let l = AncestryLabel { pre, post };
        prop_assert_eq!(AncestryLabel::from_wire(&l.to_wire()).unwrap(), l);
    }

    /// Flipping any single bit of the header makes decoding fail — no
    /// corrupted header is ever accepted.
    #[test]
    fn corrupted_header_always_rejected(pre in any::<u32>(), post in any::<u32>(), bit in 0usize..(HEADER_BYTES * 8)) {
        let l = AncestryLabel { pre, post };
        let mut bytes = l.to_wire();
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(AncestryLabel::from_wire(&bytes).is_err());
    }

    /// Truncating a record anywhere makes decoding fail.
    #[test]
    fn truncation_always_rejected(pre in any::<u32>(), post in any::<u32>(), cut in 0usize..16) {
        let l = AncestryLabel { pre, post };
        let bytes = l.to_wire();
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(AncestryLabel::from_wire(&bytes[..cut]).is_err());
    }

    /// A header that declares more payload bits than the buffer carries
    /// ("the length field lies") is rejected with an error, never a panic
    /// or an out-of-bounds read.
    #[test]
    fn oversized_declared_bits_rejected(pre in any::<u32>(), post in any::<u32>(), extra in 1u32..100_000) {
        let mut bytes = AncestryLabel { pre, post }.to_wire();
        inflate_declared_bits(&mut bytes, extra);
        prop_assert!(AncestryLabel::from_wire(&bytes).is_err());
    }

    /// Arbitrary multi-byte corruption anywhere in a record never panics:
    /// decoding either cleanly fails or returns some label.
    #[test]
    fn random_corruption_never_panics(
        pre in any::<u32>(),
        post in any::<u32>(),
        hits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..12),
    ) {
        let mut bytes = AncestryLabel { pre, post }.to_wire();
        for &(pos, val) in &hits {
            let i = pos as usize % bytes.len();
            bytes[i] = val;
        }
        let _ = AncestryLabel::from_wire(&bytes);
    }
}

/// Patches the declared payload bit-length (LE u32 at bytes 4..8) upward
/// without growing the buffer.
fn inflate_declared_bits(bytes: &mut [u8], extra: u32) {
    assert!(bytes.len() >= HEADER_BYTES);
    let declared = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    bytes[4..8].copy_from_slice(&declared.saturating_add(extra).to_le_bytes());
}
