//! Ancestry labels (Lemma 3.1) and the component tree of `T \ F`
//! (Claim 3.14).
//!
//! Both connectivity labeling schemes use the same two tree gadgets:
//!
//! * **Ancestry labels** — each vertex `v` carries its DFS entry/exit times
//!   `(DFS₁(v), DFS₂(v))`; `u` is an ancestor of `v` iff `u`'s interval
//!   contains `v`'s (\[KNR92\]). `O(log n)` bits, `O(1)` query.
//! * **The component tree** — removing the faulty tree edges `F_T` splits
//!   the spanning tree into `|F_T| + 1` components; Claim 3.14 rebuilds the
//!   tree of those components *from the ancestry labels of the fault
//!   endpoints alone* in `O(f log f)` time, and locates any vertex's
//!   component from its ancestry label in `O(log f)` time.
//!
//! The byte-level wire format these labels (and the server's envelope
//! frames) share is specified in `docs/serving.md`; the crate map is in
//! `README.md`.

#![forbid(unsafe_code)]

pub mod ancestry;
pub mod component_tree;
pub mod wire;

pub use ancestry::AncestryLabel;
pub use component_tree::{ComponentId, ComponentTree, FaultTreeEdge};
pub use wire::{LabelKind, WireError, WireLabel, WireReader, WireWriter};
