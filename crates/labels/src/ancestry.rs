//! Ancestry labels for rooted trees (Lemma 3.1, \[KNR92\]).

use ftl_graph::{SpanningTree, VertexId};

/// The ancestry label `ANC_T(v) = (DFS₁(v), DFS₂(v))` of a vertex in a
/// rooted spanning tree: its DFS entry and exit times.
///
/// Two labels decide ancestry in O(1): `u` is an ancestor of `v` iff
/// `u`'s interval contains `v`'s. The label occupies `2·⌈log 2n⌉` bits.
///
/// # Example
///
/// ```
/// use ftl_graph::{GraphBuilder, SpanningTree, VertexId};
/// use ftl_labels::AncestryLabel;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_unit_edge(0, 1);
/// b.add_unit_edge(1, 2);
/// let g = b.build();
/// let t = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
/// let l0 = AncestryLabel::of(&t, VertexId::new(0));
/// let l2 = AncestryLabel::of(&t, VertexId::new(2));
/// assert!(l0.is_ancestor_of(&l2));
/// assert!(!l2.is_ancestor_of(&l0));
/// ```
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AncestryLabel {
    /// DFS entry time (`DFS₁`).
    pub pre: u32,
    /// DFS exit time (`DFS₂`).
    pub post: u32,
}

impl AncestryLabel {
    /// Extracts the label of a tree vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the tree.
    pub fn of(tree: &SpanningTree, v: VertexId) -> Self {
        assert!(tree.contains(v), "{v:?} is not in the spanning tree");
        AncestryLabel {
            pre: tree.pre(v),
            post: tree.post(v),
        }
    }

    /// Whether `self` labels an ancestor of the vertex labeled by `other`
    /// (inclusive: every vertex is its own ancestor).
    #[inline]
    pub fn is_ancestor_of(&self, other: &AncestryLabel) -> bool {
        self.pre <= other.pre && other.post <= self.post
    }

    /// Whether `self` is a *strict* ancestor of `other`.
    #[inline]
    pub fn is_strict_ancestor_of(&self, other: &AncestryLabel) -> bool {
        self != other && self.is_ancestor_of(other)
    }

    /// Label length in bits, given the DFS time bound `max_time` (Lemma 3.1:
    /// `2⌈log n⌉ + O(1)` bits).
    pub fn bits(max_time: u32) -> usize {
        2 * (32 - max_time.leading_zeros()) as usize
    }

    /// Packs the label into a `u64` (used when XOR-ing labels inside sketch
    /// cells).
    #[inline]
    pub fn pack(&self) -> u64 {
        ((self.pre as u64) << 32) | self.post as u64
    }

    /// Unpacks a label from [`AncestryLabel::pack`]'s format.
    #[inline]
    pub fn unpack(word: u64) -> Self {
        AncestryLabel {
            pre: (word >> 32) as u32,
            post: word as u32,
        }
    }
}

/// Computes the ancestry labels of every tree vertex (`None` for vertices
/// outside the tree).
pub fn all_labels(tree: &SpanningTree, n: usize) -> Vec<Option<AncestryLabel>> {
    (0..n)
        .map(|i| {
            let v = VertexId::new(i);
            tree.contains(v).then(|| AncestryLabel::of(tree, v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::GraphBuilder;

    fn sample_tree() -> (ftl_graph::Graph, SpanningTree) {
        // 0 - {1, 2}; 1 - {3, 4}; 2 - {5}
        let mut b = GraphBuilder::new(6);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(0, 2);
        b.add_unit_edge(1, 3);
        b.add_unit_edge(1, 4);
        b.add_unit_edge(2, 5);
        let g = b.build();
        let t = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        (g, t)
    }

    #[test]
    fn ancestry_matches_tree() {
        let (_, t) = sample_tree();
        let labels = all_labels(&t, 6);
        for a in 0..6 {
            for b in 0..6 {
                let (va, vb) = (VertexId::new(a), VertexId::new(b));
                let la = labels[a].unwrap();
                let lb = labels[b].unwrap();
                assert_eq!(la.is_ancestor_of(&lb), t.is_ancestor(va, vb), "({a},{b})");
            }
        }
    }

    #[test]
    fn strict_ancestry_excludes_self() {
        let (_, t) = sample_tree();
        let l = AncestryLabel::of(&t, VertexId::new(1));
        assert!(l.is_ancestor_of(&l));
        assert!(!l.is_strict_ancestor_of(&l));
    }

    #[test]
    fn pack_roundtrip() {
        let l = AncestryLabel { pre: 7, post: 1234 };
        assert_eq!(AncestryLabel::unpack(l.pack()), l);
        let l = AncestryLabel {
            pre: u32::MAX,
            post: 0,
        };
        assert_eq!(AncestryLabel::unpack(l.pack()), l);
    }

    #[test]
    fn bits_accounting() {
        assert_eq!(AncestryLabel::bits(1), 2);
        assert_eq!(AncestryLabel::bits(255), 16);
        assert_eq!(AncestryLabel::bits(256), 18);
    }

    #[test]
    fn labels_are_distinct() {
        let (_, t) = sample_tree();
        let labels = all_labels(&t, 6);
        for a in 0..6 {
            for b in (a + 1)..6 {
                assert_ne!(labels[a], labels[b]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn label_of_non_tree_vertex_panics() {
        let mut b = GraphBuilder::new(3);
        b.add_unit_edge(0, 1);
        let g = b.build();
        let bfs = ftl_graph::traversal::bfs(&g, VertexId::new(0), &[]);
        let t = SpanningTree::from_bfs(&g, VertexId::new(0), &bfs);
        AncestryLabel::of(&t, VertexId::new(2));
    }
}
