//! The `ftl` wire format: a versioned header plus a bit-packed payload.
//!
//! Every label type that can be held in an off-struct store (the
//! `ftl-engine` label store, files, sockets) implements [`WireLabel`]:
//!
//! ```text
//! byte 0..2   magic  0xF7 0x4C            ("FTL")
//! byte 2      format version              (WIRE_VERSION)
//! byte 3      label kind                  (LabelKind as u8)
//! byte 4..8   payload length in bits, u32 little-endian
//! byte 8..    payload, bit-packed little-endian, zero-padded to a byte
//! ```
//!
//! Payloads are written through [`WireWriter`] (bit-granular, so a `b`-bit
//! `φ(e)` costs exactly `b` bits on the wire) and read back through
//! [`WireReader`], which bounds-checks every read against the header's bit
//! length and rejects trailing garbage — a decoder either reproduces the
//! encoded label exactly or fails with a [`WireError`].

use ftl_gf2::BitVec;
use std::fmt;

/// Magic bytes opening every wire label.
pub const WIRE_MAGIC: [u8; 2] = [0xF7, 0x4C];

/// Current wire-format version. Decoders reject anything newer or older;
/// bump on any layout change.
pub const WIRE_VERSION: u8 = 1;

/// Size of the fixed header preceding every payload.
pub const HEADER_BYTES: usize = 8;

/// Discriminates the label type carried by a wire record.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LabelKind {
    /// [`crate::AncestryLabel`].
    Ancestry = 0x01,
    /// A cycle-space vertex label.
    CycleSpaceVertex = 0x10,
    /// A cycle-space edge label.
    CycleSpaceEdge = 0x11,
    /// A sketch-scheme vertex label.
    SketchVertex = 0x20,
    /// A sketch-scheme edge label.
    SketchEdge = 0x21,
    /// A fault-tolerant routing label.
    Route = 0x30,
    /// A serving-envelope request frame (`ftl-server`; see
    /// `docs/serving.md`). Not a label: the serving front end frames its
    /// request/response bodies as wire records so they inherit this
    /// module's header versioning and corruption rejection.
    QueryRequest = 0x40,
    /// A serving-envelope response frame (`ftl-server`).
    QueryResponse = 0x41,
    /// An admin-envelope metrics scrape request (`ftl-server`; see
    /// `docs/observability.md`). Answered out of band — it never enters
    /// the batching pipeline.
    MetricsRequest = 0x50,
    /// An admin-envelope metrics scrape response: a Prometheus-style
    /// text exposition.
    MetricsResponse = 0x51,
}

impl LabelKind {
    /// Parses a kind byte.
    pub fn from_u8(b: u8) -> Option<LabelKind> {
        match b {
            0x01 => Some(LabelKind::Ancestry),
            0x10 => Some(LabelKind::CycleSpaceVertex),
            0x11 => Some(LabelKind::CycleSpaceEdge),
            0x20 => Some(LabelKind::SketchVertex),
            0x21 => Some(LabelKind::SketchEdge),
            0x30 => Some(LabelKind::Route),
            0x40 => Some(LabelKind::QueryRequest),
            0x41 => Some(LabelKind::QueryResponse),
            0x50 => Some(LabelKind::MetricsRequest),
            0x51 => Some(LabelKind::MetricsResponse),
            _ => None,
        }
    }
}

/// Why a wire record failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The record is shorter than the fixed header.
    TooShort,
    /// The magic bytes are wrong — this is not a wire label at all.
    BadMagic,
    /// The version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte does not name any known label type.
    UnknownKind(u8),
    /// The record carries a different label type than the caller asked for.
    WrongKind {
        /// The kind the caller tried to decode.
        expected: LabelKind,
        /// The kind named in the header.
        got: LabelKind,
    },
    /// The byte length does not match the header's payload bit length.
    LengthMismatch,
    /// Padding bits after the payload are non-zero.
    DirtyPadding,
    /// A read ran past the end of the payload.
    Truncated,
    /// The payload decoded but with bits left over.
    TrailingBits,
    /// A field held a value the decoder cannot represent.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooShort => write!(f, "record shorter than the wire header"),
            WireError::BadMagic => write!(f, "bad magic bytes"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown label kind byte {k:#04x}"),
            WireError::WrongKind { expected, got } => {
                write!(f, "expected {expected:?} label, found {got:?}")
            }
            WireError::LengthMismatch => write!(f, "byte length inconsistent with header"),
            WireError::DirtyPadding => write!(f, "non-zero padding after payload"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBits => write!(f, "payload has trailing bits"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bit-granular payload writer. Bits are packed little-endian within
/// little-endian `u64` words, matching [`BitVec`]'s layout, so whole bit
/// vectors serialize as word copies.
#[derive(Debug, Default)]
pub struct WireWriter {
    words: Vec<u64>,
    bits: usize,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Number of payload bits written so far.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Appends the low `n` bits of `word` (`n <= 64`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or if `word` has bits above `n` set.
    pub fn write_word(&mut self, word: u64, n: usize) {
        assert!(n <= 64, "at most 64 bits per write");
        if n < 64 {
            assert!(word >> n == 0, "value {word} does not fit in {n} bits");
        }
        if n == 0 {
            return;
        }
        let offset = self.bits % 64;
        // `offset > 0` implies a last word exists; spelled as if-let so the
        // serving path stays panic-free by construction (FTL003), with a
        // push fallback that keeps the written bits correct regardless.
        match self.words.last_mut() {
            Some(last) if offset != 0 => {
                *last |= word << offset;
                if offset + n > 64 {
                    self.words.push(word >> (64 - offset));
                }
            }
            _ => self.words.push(word),
        }
        self.bits += n;
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, b: bool) {
        self.write_word(b as u64, 1);
    }

    /// Appends the raw bits of `v` (exactly `v.len()` bits; the caller's
    /// decoder must know the length from context).
    pub fn write_bits(&mut self, v: &BitVec) {
        let mut remaining = v.len();
        for &w in v.words() {
            let n = remaining.min(64);
            self.write_word(w & mask(n), n);
            remaining -= n;
        }
    }

    /// Appends `v` with a 32-bit length prefix, for fields whose width the
    /// decoder cannot derive.
    pub fn write_len_bits(&mut self, v: &BitVec) {
        self.write_word(v.len() as u64, 32);
        self.write_bits(v);
    }

    /// Seals the payload into a complete wire record of the given kind.
    pub fn finish(self, kind: LabelKind) -> Vec<u8> {
        let payload_bytes = self.bits.div_ceil(8);
        let mut out = Vec::with_capacity(HEADER_BYTES + payload_bytes);
        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION);
        out.push(kind as u8);
        out.extend_from_slice(&(self.bits as u32).to_le_bytes());
        for i in 0..payload_bytes {
            let w = self.words[i / 8];
            out.push((w >> ((i % 8) * 8)) as u8);
        }
        out
    }
}

#[inline]
fn mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Bounds-checked bit-granular payload reader; the inverse of
/// [`WireWriter`].
#[derive(Debug)]
pub struct WireReader {
    words: Vec<u64>,
    bits: usize,
    pos: usize,
}

impl WireReader {
    /// Parses the header of a wire record, checks magic/version/byte-length
    /// consistency, and returns the named kind plus a reader positioned at
    /// the start of the payload.
    pub fn open(bytes: &[u8]) -> Result<(LabelKind, WireReader), WireError> {
        if bytes.len() < HEADER_BYTES {
            return Err(WireError::TooShort);
        }
        if bytes[0..2] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        if bytes[2] != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(bytes[2]));
        }
        let kind = LabelKind::from_u8(bytes[3]).ok_or(WireError::UnknownKind(bytes[3]))?;
        // The length check above guarantees 4 bytes; a corrupted-slice
        // surprise still degrades to an error, never a panic (FTL003).
        let Ok(len_bytes) = bytes[4..8].try_into() else {
            return Err(WireError::TooShort);
        };
        let bits = u32::from_le_bytes(len_bytes) as usize;
        let payload = &bytes[HEADER_BYTES..];
        if payload.len() != bits.div_ceil(8) {
            return Err(WireError::LengthMismatch);
        }
        if !bits.is_multiple_of(8) {
            let padding = payload[payload.len() - 1] >> (bits % 8);
            if padding != 0 {
                return Err(WireError::DirtyPadding);
            }
        }
        let mut words = vec![0u64; payload.len().div_ceil(8)];
        for (i, &b) in payload.iter().enumerate() {
            words[i / 8] |= (b as u64) << ((i % 8) * 8);
        }
        Ok((
            kind,
            WireReader {
                words,
                bits,
                pos: 0,
            },
        ))
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bits - self.pos
    }

    /// Reads `n` bits (`n <= 64`) as a word.
    pub fn read_word(&mut self, n: usize) -> Result<u64, WireError> {
        assert!(n <= 64, "at most 64 bits per read");
        if self.pos + n > self.bits {
            return Err(WireError::Truncated);
        }
        if n == 0 {
            return Ok(0);
        }
        let word = self.pos / 64;
        let offset = self.pos % 64;
        let mut w = self.words[word] >> offset;
        if offset + n > 64 {
            w |= self.words[word + 1] << (64 - offset);
        }
        self.pos += n;
        Ok(w & mask(n))
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> Result<bool, WireError> {
        Ok(self.read_word(1)? == 1)
    }

    /// Reads exactly `len` raw bits into a [`BitVec`].
    pub fn read_bits(&mut self, len: usize) -> Result<BitVec, WireError> {
        if self.pos + len > self.bits {
            return Err(WireError::Truncated);
        }
        let mut words = vec![0u64; len.div_ceil(64)];
        for (i, w) in words.iter_mut().enumerate() {
            let n = (len - i * 64).min(64);
            *w = self.read_word(n)?;
        }
        Ok(BitVec::from_words(&words, len))
    }

    /// Reads a 32-bit length prefix then that many bits; the inverse of
    /// [`WireWriter::write_len_bits`].
    pub fn read_len_bits(&mut self) -> Result<BitVec, WireError> {
        let len = self.read_word(32)? as usize;
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        self.read_bits(len)
    }

    /// Asserts the payload was consumed exactly.
    pub fn close(self) -> Result<(), WireError> {
        if self.pos == self.bits {
            Ok(())
        } else {
            Err(WireError::TrailingBits)
        }
    }
}

/// A label with a wire representation.
///
/// Implementors provide the payload codec; the provided [`to_wire`] /
/// [`from_wire`] wrap it in the versioned header and enforce the
/// kind/version/length checks.
///
/// [`to_wire`]: WireLabel::to_wire
/// [`from_wire`]: WireLabel::from_wire
pub trait WireLabel: Sized {
    /// The kind byte identifying this label type on the wire.
    const KIND: LabelKind;

    /// Writes the payload bits.
    fn encode_payload(&self, w: &mut WireWriter);

    /// Reads the payload bits; must consume exactly what
    /// [`WireLabel::encode_payload`] wrote.
    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError>;

    /// Serializes to a complete wire record (header + payload).
    fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode_payload(&mut w);
        w.finish(Self::KIND)
    }

    /// Deserializes a wire record, checking header integrity and that the
    /// record carries this label type.
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let (kind, mut r) = WireReader::open(bytes)?;
        if kind != Self::KIND {
            return Err(WireError::WrongKind {
                expected: Self::KIND,
                got: kind,
            });
        }
        let label = Self::decode_payload(&mut r)?;
        r.close()?;
        Ok(label)
    }
}

impl WireLabel for crate::AncestryLabel {
    const KIND: LabelKind = LabelKind::Ancestry;

    fn encode_payload(&self, w: &mut WireWriter) {
        w.write_word(self.pre as u64, 32);
        w.write_word(self.post as u64, 32);
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(crate::AncestryLabel {
            pre: r.read_word(32)? as u32,
            post: r.read_word(32)? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AncestryLabel;

    #[test]
    fn writer_reader_roundtrip_mixed_widths() {
        let mut w = WireWriter::new();
        w.write_word(0b101, 3);
        w.write_bit(true);
        w.write_word(u64::MAX, 64);
        w.write_word(0xABCD, 16);
        let mut v = BitVec::zeros(77);
        v.set(0, true);
        v.set(76, true);
        w.write_len_bits(&v);
        let bytes = w.finish(LabelKind::Ancestry);
        let (kind, mut r) = WireReader::open(&bytes).unwrap();
        assert_eq!(kind, LabelKind::Ancestry);
        assert_eq!(r.read_word(3).unwrap(), 0b101);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_word(64).unwrap(), u64::MAX);
        assert_eq!(r.read_word(16).unwrap(), 0xABCD);
        assert_eq!(r.read_len_bits().unwrap(), v);
        r.close().unwrap();
    }

    #[test]
    fn ancestry_roundtrip() {
        let l = AncestryLabel {
            pre: 42,
            post: u32::MAX,
        };
        let bytes = l.to_wire();
        assert_eq!(AncestryLabel::from_wire(&bytes).unwrap(), l);
    }

    #[test]
    fn header_corruptions_rejected() {
        let l = AncestryLabel { pre: 1, post: 2 };
        let good = l.to_wire();
        assert!(AncestryLabel::from_wire(&good).is_ok());

        // Too short for a header at all.
        assert_eq!(
            AncestryLabel::from_wire(&good[..4]),
            Err(WireError::TooShort)
        );
        // Flipped magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(AncestryLabel::from_wire(&bad), Err(WireError::BadMagic));
        // Future version.
        let mut bad = good.clone();
        bad[2] = WIRE_VERSION + 1;
        assert_eq!(
            AncestryLabel::from_wire(&bad),
            Err(WireError::UnsupportedVersion(WIRE_VERSION + 1))
        );
        // Unknown kind byte.
        let mut bad = good.clone();
        bad[3] = 0xEE;
        assert_eq!(
            AncestryLabel::from_wire(&bad),
            Err(WireError::UnknownKind(0xEE))
        );
        // Truncated payload.
        assert_eq!(
            AncestryLabel::from_wire(&good[..good.len() - 1]),
            Err(WireError::LengthMismatch)
        );
        // Header bit length inflated past the actual bytes.
        let mut bad = good.clone();
        bad[4] = bad[4].wrapping_add(8);
        assert_eq!(
            AncestryLabel::from_wire(&bad),
            Err(WireError::LengthMismatch)
        );
    }

    #[test]
    fn wrong_kind_rejected() {
        struct Other(u32);
        impl WireLabel for Other {
            const KIND: LabelKind = LabelKind::Route;
            fn encode_payload(&self, w: &mut WireWriter) {
                w.write_word(self.0 as u64, 32);
            }
            fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
                Ok(Other(r.read_word(32)? as u32))
            }
        }
        let bytes = Other(9).to_wire();
        assert_eq!(
            AncestryLabel::from_wire(&bytes),
            Err(WireError::WrongKind {
                expected: LabelKind::Ancestry,
                got: LabelKind::Route,
            })
        );
    }

    #[test]
    fn envelope_kinds_roundtrip_through_from_u8() {
        for kind in [
            LabelKind::QueryRequest,
            LabelKind::QueryResponse,
            LabelKind::MetricsRequest,
            LabelKind::MetricsResponse,
        ] {
            assert_eq!(LabelKind::from_u8(kind as u8), Some(kind));
        }
        // The gaps between the label kinds and the envelope kinds stay
        // unassigned.
        assert_eq!(LabelKind::from_u8(0x31), None);
        assert_eq!(LabelKind::from_u8(0x42), None);
        assert_eq!(LabelKind::from_u8(0x52), None);
    }

    #[test]
    fn dirty_padding_rejected() {
        let mut w = WireWriter::new();
        w.write_word(0b1, 3); // 3 payload bits -> 5 padding bits in the byte
        let mut bytes = w.finish(LabelKind::Ancestry);
        let last = bytes.len() - 1;
        bytes[last] |= 0x80;
        assert!(matches!(
            WireReader::open(&bytes),
            Err(WireError::DirtyPadding)
        ));
    }

    #[test]
    fn trailing_bits_rejected() {
        // A payload longer than AncestryLabel's 64 bits decodes the label
        // but fails the exact-consumption check.
        let mut w = WireWriter::new();
        w.write_word(1, 32);
        w.write_word(2, 32);
        w.write_word(0, 7);
        let bytes = w.finish(LabelKind::Ancestry);
        assert_eq!(
            AncestryLabel::from_wire(&bytes),
            Err(WireError::TrailingBits)
        );
    }

    #[test]
    fn reads_past_end_rejected() {
        let mut w = WireWriter::new();
        w.write_word(7, 3);
        let bytes = w.finish(LabelKind::Ancestry);
        let (_, mut r) = WireReader::open(&bytes).unwrap();
        assert_eq!(r.read_word(4), Err(WireError::Truncated));
        assert_eq!(r.read_word(3).unwrap(), 7);
        assert_eq!(r.read_word(1), Err(WireError::Truncated));
    }
}
