//! The component tree of `T \ F` (Claim 3.14).
//!
//! Removing the faulty tree edges `F_T` from the spanning tree `T` leaves
//! `|F_T| + 1` connected components. Each component is represented by its
//! *highest* vertex: the root `r` for the top component, and the child
//! endpoint of the corresponding fault edge for every other component.
//!
//! Claim 3.14 shows the full component tree — and point location of any
//! vertex's component — can be recovered from the **ancestry labels of the
//! fault endpoints alone**, by sorting the `2(|F_T|+1)` DFS-time tuples and
//! scanning. This module implements exactly that algorithm, including the
//! `O(log f)`-time binary-search point location.

use crate::ancestry::AncestryLabel;

/// Dense index of a component of `T \ F`. Component `0` is always the
/// root's component.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub usize);

impl ComponentId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A faulty tree edge, oriented: `parent` is the endpoint closer to the
/// root.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct FaultTreeEdge {
    /// Ancestry label of the endpoint closer to the root.
    pub parent: AncestryLabel,
    /// Ancestry label of the endpoint farther from the root (this vertex
    /// represents the component hanging below the edge).
    pub child: AncestryLabel,
}

impl FaultTreeEdge {
    /// Orients an endpoint pair. Returns `None` if neither endpoint is an
    /// ancestor of the other (then `(a, b)` cannot be a tree edge).
    pub fn from_endpoints(a: AncestryLabel, b: AncestryLabel) -> Option<Self> {
        if a.is_strict_ancestor_of(&b) {
            Some(FaultTreeEdge {
                parent: a,
                child: b,
            })
        } else if b.is_strict_ancestor_of(&a) {
            Some(FaultTreeEdge {
                parent: b,
                child: a,
            })
        } else {
            None
        }
    }
}

/// The component tree `T_C = (C₀, E_C)` of Claim 3.14, built from ancestry
/// labels only.
///
/// # Example
///
/// ```
/// use ftl_labels::{AncestryLabel, ComponentTree, FaultTreeEdge};
///
/// // A path r(1,8) - a(2,7) - b(3,6) - c(4,5) with the a-b edge faulty.
/// let r = AncestryLabel { pre: 1, post: 8 };
/// let a = AncestryLabel { pre: 2, post: 7 };
/// let b = AncestryLabel { pre: 3, post: 6 };
/// let c = AncestryLabel { pre: 4, post: 5 };
/// let fault = FaultTreeEdge::from_endpoints(a, b).unwrap();
/// let ct = ComponentTree::new(&[fault], 9);
/// assert_eq!(ct.num_components(), 2);
/// assert_eq!(ct.component_of(r), ct.component_of(a));
/// assert_eq!(ct.component_of(b), ct.component_of(c));
/// assert_ne!(ct.component_of(a), ct.component_of(b));
/// ```
#[derive(Debug, Clone)]
pub struct ComponentTree {
    /// Representative label per component; index 0 is the root component
    /// with the synthetic label `(1, M)`.
    reps: Vec<AncestryLabel>,
    /// Parent component (None only for the root component).
    parent: Vec<Option<ComponentId>>,
    children: Vec<Vec<ComponentId>>,
    /// For each non-root component, the index (into the constructor's edge
    /// list) of the fault edge connecting it to its parent component.
    edge_to_parent: Vec<Option<usize>>,
    /// Sorted `(dfs_value, component, kind)` tuples; kind 1 = entry, 2 = exit.
    tuples: Vec<(u32, usize, u8)>,
}

impl ComponentTree {
    /// Builds the component tree from the faulty tree edges.
    ///
    /// `max_time` must exceed every DFS time in the tree (use
    /// [`ftl_graph::SpanningTree::max_time`]). Duplicate fault edges are
    /// tolerated (deduplicated by child label); they keep their original
    /// indices in [`ComponentTree::edge_to_parent`].
    pub fn new(fault_edges: &[FaultTreeEdge], max_time: u32) -> Self {
        // Component 0: the root, with synthetic label (1, M).
        let mut reps = vec![AncestryLabel {
            pre: 1,
            post: max_time,
        }];
        let mut edge_index = vec![None];
        let mut seen_children: Vec<AncestryLabel> = Vec::new();
        for (i, fe) in fault_edges.iter().enumerate() {
            if seen_children.contains(&fe.child) {
                continue; // duplicate fault edge
            }
            seen_children.push(fe.child);
            reps.push(fe.child);
            edge_index.push(Some(i));
        }
        let k = reps.len();
        // Tuples (DFS1, comp, 1), (DFS2, comp, 2), sorted by DFS value.
        let mut tuples: Vec<(u32, usize, u8)> = Vec::with_capacity(2 * k);
        for (c, rep) in reps.iter().enumerate() {
            tuples.push((rep.pre, c, 1));
            tuples.push((rep.post, c, 2));
        }
        tuples.sort_unstable();
        // Scan: on seeing (DFS1(v_i), v_i, 1), the previous tuple decides the
        // parent (proof in Claim 3.14).
        let mut parent: Vec<Option<ComponentId>> = vec![None; k];
        for t in 1..tuples.len() {
            let (_, c, kind) = tuples[t];
            if kind != 1 {
                continue;
            }
            let (_, u, b) = tuples[t - 1];
            parent[c] = if b == 1 {
                Some(ComponentId(u))
            } else {
                parent[u]
            };
        }
        let mut children: Vec<Vec<ComponentId>> = vec![Vec::new(); k];
        for (c, par) in parent.iter().enumerate().take(k) {
            if let Some(p) = par {
                children[p.index()].push(ComponentId(c));
            }
        }
        ComponentTree {
            reps,
            parent,
            children,
            edge_to_parent: edge_index,
            tuples,
        }
    }

    /// Number of components `|F_T| + 1` (after deduplication).
    pub fn num_components(&self) -> usize {
        self.reps.len()
    }

    /// The root component.
    pub fn root(&self) -> ComponentId {
        ComponentId(0)
    }

    /// Representative (highest vertex) label of a component. For the root
    /// component this is the synthetic `(1, M)` label.
    pub fn rep(&self, c: ComponentId) -> AncestryLabel {
        self.reps[c.index()]
    }

    /// Parent component in the component tree.
    pub fn parent(&self, c: ComponentId) -> Option<ComponentId> {
        self.parent[c.index()]
    }

    /// Children components.
    pub fn children(&self, c: ComponentId) -> &[ComponentId] {
        &self.children[c.index()]
    }

    /// For a non-root component, the index of the fault edge (in the
    /// constructor's list) connecting it to its parent component.
    pub fn edge_to_parent(&self, c: ComponentId) -> Option<usize> {
        self.edge_to_parent[c.index()]
    }

    /// Iterator over all component ids.
    pub fn component_ids(&self) -> impl Iterator<Item = ComponentId> {
        (0..self.num_components()).map(ComponentId)
    }

    /// Point location (Claim 3.14, second part): the component of the vertex
    /// with ancestry label `v`, in `O(log f)` time.
    pub fn component_of(&self, v: AncestryLabel) -> ComponentId {
        // Find the last tuple with value <= DFS1(v).
        let pos = self.tuples.partition_point(|&(val, _, _)| val <= v.pre);
        assert!(pos > 0, "DFS times start at 1, root tuple is (1, ., 1)");
        let (val, u, b) = self.tuples[pos - 1];
        if val == v.pre {
            // v is a component representative itself.
            return ComponentId(u);
        }
        if b == 1 {
            ComponentId(u)
        } else {
            // The exit tuple of a non-last component always records a
            // parent; degrade to the component itself rather than panic
            // if the tree were ever corrupt.
            self.parent[u].unwrap_or(ComponentId(u))
        }
    }

    /// Components in an order where parents precede children (root first).
    pub fn topological_order(&self) -> Vec<ComponentId> {
        let mut order = vec![self.root()];
        let mut i = 0;
        while i < order.len() {
            let c = order[i];
            order.extend(self.children(c).iter().copied());
            i += 1;
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::{GraphBuilder, SpanningTree, VertexId};

    /// Builds a spanning tree and returns it with per-vertex labels.
    fn tree_from_edges(n: usize, edges: &[(usize, usize)]) -> (SpanningTree, Vec<AncestryLabel>) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_unit_edge(u, v);
        }
        let g = b.build();
        let t = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let labels = (0..n)
            .map(|i| AncestryLabel::of(&t, VertexId::new(i)))
            .collect();
        (t, labels)
    }

    /// Ground truth: component of each vertex in T \ F by BFS over tree
    /// edges minus faults.
    fn ground_truth_components(
        n: usize,
        edges: &[(usize, usize)],
        faults: &[(usize, usize)],
    ) -> Vec<usize> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            if faults.contains(&(u, v)) || faults.contains(&(v, u)) {
                continue;
            }
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut comp = vec![usize::MAX; n];
        let mut c = 0;
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s];
            comp[s] = c;
            while let Some(u) = stack.pop() {
                for &w in &adj[u] {
                    if comp[w] == usize::MAX {
                        comp[w] = c;
                        stack.push(w);
                    }
                }
            }
            c += 1;
        }
        comp
    }

    fn check_against_ground_truth(n: usize, edges: &[(usize, usize)], faults: &[(usize, usize)]) {
        let (t, labels) = tree_from_edges(n, edges);
        let fault_edges: Vec<FaultTreeEdge> = faults
            .iter()
            .map(|&(u, v)| FaultTreeEdge::from_endpoints(labels[u], labels[v]).unwrap())
            .collect();
        let ct = ComponentTree::new(&fault_edges, t.max_time());
        let truth = ground_truth_components(n, edges, faults);
        assert_eq!(ct.num_components(), faults.len() + 1);
        // Same component in the reconstruction iff same component in truth.
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    ct.component_of(labels[a]) == ct.component_of(labels[b]),
                    truth[a] == truth[b],
                    "vertices {a}, {b}"
                );
            }
        }
    }

    #[test]
    fn path_tree_single_fault() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        check_against_ground_truth(5, &edges, &[(1, 2)]);
        check_against_ground_truth(5, &edges, &[(0, 1)]);
        check_against_ground_truth(5, &edges, &[(3, 4)]);
    }

    #[test]
    fn path_tree_multiple_faults() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)];
        check_against_ground_truth(6, &edges, &[(0, 1), (2, 3), (4, 5)]);
        check_against_ground_truth(6, &edges, &[(1, 2), (2, 3)]);
    }

    #[test]
    fn star_tree_faults() {
        let edges = [(0, 1), (0, 2), (0, 3), (0, 4)];
        check_against_ground_truth(5, &edges, &[(0, 1), (0, 3)]);
        check_against_ground_truth(5, &edges, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
    }

    #[test]
    fn branching_tree_faults() {
        //      0
        //     / \
        //    1   2
        //   /|    \
        //  3 4     5
        //  |        \
        //  6         7
        let edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (3, 6), (5, 7)];
        check_against_ground_truth(8, &edges, &[(0, 1), (3, 6)]);
        check_against_ground_truth(8, &edges, &[(0, 1), (0, 2)]);
        check_against_ground_truth(8, &edges, &[(1, 3), (1, 4), (2, 5), (5, 7)]);
    }

    #[test]
    fn component_tree_structure_path() {
        // Path 0-1-2-3 with faults (0,1) and (2,3): components {0}, {1,2}, {3}.
        let edges = [(0, 1), (1, 2), (2, 3)];
        let (t, labels) = tree_from_edges(4, &edges);
        let f1 = FaultTreeEdge::from_endpoints(labels[0], labels[1]).unwrap();
        let f2 = FaultTreeEdge::from_endpoints(labels[2], labels[3]).unwrap();
        let ct = ComponentTree::new(&[f1, f2], t.max_time());
        let c0 = ct.component_of(labels[0]);
        let c1 = ct.component_of(labels[1]);
        let c3 = ct.component_of(labels[3]);
        assert_eq!(c0, ct.root());
        assert_eq!(ct.parent(c1), Some(c0));
        assert_eq!(ct.parent(c3), Some(c1));
        assert_eq!(ct.edge_to_parent(c1), Some(0));
        assert_eq!(ct.edge_to_parent(c3), Some(1));
        assert_eq!(ct.children(c0), &[c1]);
        let topo = ct.topological_order();
        assert_eq!(topo[0], c0);
        assert_eq!(topo.len(), 3);
    }

    #[test]
    fn duplicate_fault_edges_deduplicated() {
        let edges = [(0, 1), (1, 2)];
        let (t, labels) = tree_from_edges(3, &edges);
        let f = FaultTreeEdge::from_endpoints(labels[0], labels[1]).unwrap();
        let ct = ComponentTree::new(&[f, f], t.max_time());
        assert_eq!(ct.num_components(), 2);
    }

    #[test]
    fn non_tree_pair_rejected_by_orientation() {
        let edges = [(0, 1), (0, 2)];
        let (_, labels) = tree_from_edges(3, &edges);
        // 1 and 2 are siblings: neither is an ancestor of the other.
        assert!(FaultTreeEdge::from_endpoints(labels[1], labels[2]).is_none());
        // Orientation picks the ancestor as parent regardless of order.
        let f1 = FaultTreeEdge::from_endpoints(labels[0], labels[1]).unwrap();
        let f2 = FaultTreeEdge::from_endpoints(labels[1], labels[0]).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn no_faults_single_component() {
        let edges = [(0, 1), (1, 2)];
        let (t, labels) = tree_from_edges(3, &edges);
        let ct = ComponentTree::new(&[], t.max_time());
        assert_eq!(ct.num_components(), 1);
        for l in labels {
            assert_eq!(ct.component_of(l), ct.root());
        }
    }

    #[test]
    fn random_trees_random_faults_match_ground_truth() {
        // Deterministic pseudo-random trees without pulling in `rand` here.
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 2 + (next() % 40) as usize;
            let edges: Vec<(usize, usize)> = (1..n).map(|i| ((next() as usize) % i, i)).collect();
            let f = 1 + (next() as usize) % edges.len().min(6);
            let mut faults = Vec::new();
            while faults.len() < f {
                let e = edges[(next() as usize) % edges.len()];
                if !faults.contains(&e) {
                    faults.push(e);
                }
            }
            check_against_ground_truth(n, &edges, &faults);
        }
    }
}
