//! # ftl-core — Fault-Tolerant Labeling Schemes
//!
//! The headline API of the reproduction of *"Fault-Tolerant Labeling and
//! Compact Routing Schemes"* (Dory–Parter, PODC 2021):
//!
//! * [`connectivity`] — `f`-FT **connectivity labels** for *general* graphs
//!   (Theorem 1.3): given only the labels of `s`, `t` and up to `f` failing
//!   edges `F`, decide whether `s` and `t` are connected in `G \ F`. Two
//!   interchangeable constructions:
//!   [`SchemeKind::CycleSpace`](connectivity::SchemeKind) with
//!   `O(f + log n)`-bit labels (Theorem 3.6) and
//!   [`SchemeKind::Sketch`](connectivity::SchemeKind) with `O(log³ n)`-bit
//!   labels independent of `f` (Theorem 3.7).
//! * [`distance`] — `f`-FT **approximate distance labels** (Theorem 1.4):
//!   labels of `Õ(k·n^{1/k})` size answering `⟨s, t, F⟩` distance queries
//!   with stretch `(8k−2)(|F|+1)`.
//!
//! Unlike the per-component building blocks in `ftl-cycle-space` /
//! `ftl-sketch`, everything here accepts **arbitrary** (possibly
//! disconnected, weighted, multi-) graphs: the labels carry a connected
//! component id and the schemes are applied per component, exactly as the
//! paper prescribes.
//!
//! # Quickstart
//!
//! ```
//! use ftl_core::connectivity::{ConnectivityLabeling, SchemeKind};
//! use ftl_graph::{generators, EdgeId, VertexId};
//! use ftl_seeded::Seed;
//!
//! let g = generators::grid(4, 4);
//! let labeling = ConnectivityLabeling::new(&g, SchemeKind::Sketch, 4, Seed::new(7));
//! let s = labeling.vertex_label(VertexId::new(0));
//! let t = labeling.vertex_label(VertexId::new(15));
//! let faults = vec![labeling.edge_label(EdgeId::new(0))];
//! assert!(labeling.decode(&s, &t, &faults));
//! ```
//!
//! For the paper-to-code map of the whole workspace — which crate owns
//! which theorem, and how the pieces compose — start at `README.md` at
//! the repo root.

#![forbid(unsafe_code)]

pub mod connectivity;
pub mod distance;

pub use connectivity::{ConnectivityLabeling, SchemeKind};
pub use distance::{DistanceLabeling, DistanceParams};
