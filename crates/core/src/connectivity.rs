//! Unified `f`-FT connectivity labeling for general graphs (Theorem 1.3).
//!
//! Wraps the two per-component constructions (`ftl-cycle-space`,
//! `ftl-sketch`) with the component-id trick of Section 3: every vertex and
//! edge label carries the id of its connected component, the scheme is
//! instantiated once per component, and a query answers "connected" iff the
//! endpoints share a component and the per-component decoder agrees.

use ftl_cycle_space::{CycleSpaceEdgeLabel, CycleSpaceScheme, CycleSpaceVertexLabel};
use ftl_graph::traversal::connected_components;
use ftl_graph::{EdgeId, Graph, InducedSubgraph, VertexId};
use ftl_seeded::Seed;
use ftl_sketch::{SketchEdgeLabel, SketchParams, SketchScheme, SketchVertexLabel};

/// Which of the paper's two constructions backs the labeling.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Cycle-space sampling (Theorem 3.6): `O(f + log n)`-bit labels,
    /// optimal for `f = O(log n)`.
    CycleSpace,
    /// Linear sketches (Theorem 3.7): `O(log³ n)`-bit labels independent of
    /// `f`; also yields a succinct path, enabling routing.
    Sketch,
}

/// Inner per-component vertex label.
#[derive(Debug, Clone, PartialEq)]
enum InnerVertexLabel {
    CycleSpace(CycleSpaceVertexLabel),
    Sketch(SketchVertexLabel),
}

/// Inner per-component edge label.
#[derive(Debug, Clone, PartialEq)]
enum InnerEdgeLabel {
    CycleSpace(CycleSpaceEdgeLabel),
    Sketch(SketchEdgeLabel),
}

/// A vertex label of the unified scheme: component id + inner label.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexLabel {
    component: usize,
    inner: InnerVertexLabel,
}

impl VertexLabel {
    /// The connected-component id carried by the label.
    pub fn component(&self) -> usize {
        self.component
    }

    /// The sketch-scheme inner label, if this labeling uses sketches.
    pub fn as_sketch(&self) -> Option<&SketchVertexLabel> {
        match &self.inner {
            InnerVertexLabel::Sketch(l) => Some(l),
            InnerVertexLabel::CycleSpace(_) => None,
        }
    }
}

/// An edge label of the unified scheme: component id + inner label.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeLabel {
    component: usize,
    inner: InnerEdgeLabel,
}

impl EdgeLabel {
    /// The connected-component id carried by the label.
    pub fn component(&self) -> usize {
        self.component
    }

    /// The sketch-scheme inner label, if this labeling uses sketches.
    pub fn as_sketch(&self) -> Option<&SketchEdgeLabel> {
        match &self.inner {
            InnerEdgeLabel::Sketch(l) => Some(l),
            InnerEdgeLabel::CycleSpace(_) => None,
        }
    }
}

enum InnerScheme {
    CycleSpace(CycleSpaceScheme),
    Sketch(SketchScheme),
}

struct Component {
    sub: InducedSubgraph,
    scheme: InnerScheme,
}

/// An `f`-FT connectivity labeling of a general graph (Theorem 1.3).
pub struct ConnectivityLabeling {
    kind: SchemeKind,
    components: Vec<Component>,
    comp_of_vertex: Vec<usize>,
    comp_of_edge: Vec<usize>,
}

impl ConnectivityLabeling {
    /// Labels `graph` against up to `f` edge faults with the chosen scheme.
    pub fn new(graph: &Graph, kind: SchemeKind, f: usize, seed: Seed) -> Self {
        let (comp_of_vertex, count) = connected_components(graph, &[]);
        let mut components = Vec::with_capacity(count);
        for c in 0..count {
            let verts: Vec<VertexId> = (0..graph.num_vertices())
                .filter(|&i| comp_of_vertex[i] == c)
                .map(VertexId::new)
                .collect();
            let sub = InducedSubgraph::new(graph, &verts, |_| true);
            let comp_seed = seed.derive(c as u64);
            let scheme = match kind {
                SchemeKind::CycleSpace => InnerScheme::CycleSpace(
                    CycleSpaceScheme::label(sub.graph(), f, comp_seed)
                        .expect("component is connected"),
                ),
                SchemeKind::Sketch => {
                    let params = SketchParams::for_graph(sub.graph());
                    InnerScheme::Sketch(
                        SketchScheme::label(sub.graph(), &params, comp_seed)
                            .expect("component is connected"),
                    )
                }
            };
            components.push(Component { sub, scheme });
        }
        let comp_of_edge = graph
            .edge_ids()
            .map(|(_, e)| comp_of_vertex[e.u().index()])
            .collect();
        ConnectivityLabeling {
            kind,
            components,
            comp_of_vertex,
            comp_of_edge,
        }
    }

    /// Which construction backs this labeling.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The label of vertex `v`.
    pub fn vertex_label(&self, v: VertexId) -> VertexLabel {
        let c = self.comp_of_vertex[v.index()];
        let comp = &self.components[c];
        let lv = comp.sub.to_local_vertex(v).expect("vertex in component");
        let inner = match &comp.scheme {
            InnerScheme::CycleSpace(s) => InnerVertexLabel::CycleSpace(s.vertex_label(lv)),
            InnerScheme::Sketch(s) => InnerVertexLabel::Sketch(s.vertex_label(lv)),
        };
        VertexLabel {
            component: c,
            inner,
        }
    }

    /// The label of edge `e`.
    pub fn edge_label(&self, e: EdgeId) -> EdgeLabel {
        let c = self.comp_of_edge[e.index()];
        let comp = &self.components[c];
        let le = comp.sub.to_local_edge(e).expect("edge in component");
        let inner = match &comp.scheme {
            InnerScheme::CycleSpace(s) => InnerEdgeLabel::CycleSpace(s.edge_label(le)),
            InnerScheme::Sketch(s) => InnerEdgeLabel::Sketch(s.edge_label(le)),
        };
        EdgeLabel {
            component: c,
            inner,
        }
    }

    /// Decodes a `⟨s, t, F⟩` query from labels alone: `true` iff `s` and `t`
    /// are connected in `G \ F` (w.h.p.).
    ///
    /// Fault labels from other components are ignored, as the paper
    /// prescribes; passing more faults than the labeling's `f` budget only
    /// degrades the failure probability of the cycle-space variant.
    pub fn decode(&self, s: &VertexLabel, t: &VertexLabel, faults: &[EdgeLabel]) -> bool {
        if s.component != t.component {
            return false;
        }
        match (&s.inner, &t.inner) {
            (InnerVertexLabel::CycleSpace(ls), InnerVertexLabel::CycleSpace(lt)) => {
                let fl: Vec<CycleSpaceEdgeLabel> = faults
                    .iter()
                    .filter(|f| f.component == s.component)
                    .filter_map(|f| match &f.inner {
                        InnerEdgeLabel::CycleSpace(l) => Some(l.clone()),
                        InnerEdgeLabel::Sketch(_) => None,
                    })
                    .collect();
                ftl_cycle_space::decode(ls, lt, &fl)
            }
            (InnerVertexLabel::Sketch(ls), InnerVertexLabel::Sketch(lt)) => {
                let fl: Vec<SketchEdgeLabel> = faults
                    .iter()
                    .filter(|f| f.component == s.component)
                    .filter_map(|f| match &f.inner {
                        InnerEdgeLabel::Sketch(l) => Some(l.clone()),
                        InnerEdgeLabel::CycleSpace(_) => None,
                    })
                    .collect();
                ftl_sketch::decode(ls, lt, &fl).connected
            }
            _ => panic!("mixed labels from different scheme kinds"),
        }
    }

    /// Longest vertex label in bits (component id included).
    pub fn vertex_label_bits(&self) -> usize {
        let comp_bits = 32;
        comp_bits
            + self
                .components
                .iter()
                .map(|c| match &c.scheme {
                    InnerScheme::CycleSpace(s) => s.vertex_label_bits(),
                    InnerScheme::Sketch(s) => s.vertex_label_bits(),
                })
                .max()
                .unwrap_or(0)
    }

    /// Longest edge label in bits (component id included).
    pub fn edge_label_bits(&self) -> usize {
        let comp_bits = 32;
        comp_bits
            + self
                .components
                .iter()
                .map(|c| match &c.scheme {
                    InnerScheme::CycleSpace(s) => s.edge_label_bits(),
                    InnerScheme::Sketch(s) => s.edge_label_bits(),
                })
                .max()
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;
    use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check(g: &Graph, kind: SchemeKind, faults: &[EdgeId], seed: u64) {
        let labeling = ConnectivityLabeling::new(g, kind, faults.len(), Seed::new(seed));
        let fl: Vec<EdgeLabel> = faults.iter().map(|&e| labeling.edge_label(e)).collect();
        let mask = forbidden_mask(g, faults);
        for a in 0..g.num_vertices() {
            for b in 0..g.num_vertices() {
                let (s, t) = (VertexId::new(a), VertexId::new(b));
                let truth = connected_avoiding(g, s, t, &mask);
                let got =
                    labeling.decode(&labeling.vertex_label(s), &labeling.vertex_label(t), &fl);
                assert_eq!(got, truth, "{kind:?} pair ({a},{b})");
            }
        }
    }

    #[test]
    fn both_schemes_on_connected_graphs() {
        let g = generators::grid(3, 3);
        for kind in [SchemeKind::CycleSpace, SchemeKind::Sketch] {
            check(&g, kind, &[EdgeId::new(0), EdgeId::new(5)], 3);
        }
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two components: a triangle and a path.
        let mut b = ftl_graph::GraphBuilder::new(6);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(1, 2);
        b.add_unit_edge(2, 0);
        b.add_unit_edge(3, 4);
        b.add_unit_edge(4, 5);
        let g = b.build();
        for kind in [SchemeKind::CycleSpace, SchemeKind::Sketch] {
            check(&g, kind, &[], 1);
            check(&g, kind, &[EdgeId::new(0)], 2);
            check(&g, kind, &[EdgeId::new(3)], 3);
            check(&g, kind, &[EdgeId::new(0), EdgeId::new(4)], 4);
        }
    }

    #[test]
    fn isolated_vertices() {
        let mut b = ftl_graph::GraphBuilder::new(3);
        b.add_unit_edge(0, 1);
        let g = b.build();
        for kind in [SchemeKind::CycleSpace, SchemeKind::Sketch] {
            check(&g, kind, &[EdgeId::new(0)], 5);
        }
    }

    #[test]
    fn random_graphs_random_faults() {
        let mut rng = StdRng::seed_from_u64(12);
        for kind in [SchemeKind::CycleSpace, SchemeKind::Sketch] {
            for trial in 0..6 {
                let g = generators::erdos_renyi(24, 0.1, &mut rng);
                let f = rng.gen_range(0..6).min(g.num_edges());
                let mut faults = Vec::new();
                while faults.len() < f {
                    let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
                    if !faults.contains(&e) {
                        faults.push(e);
                    }
                }
                check(&g, kind, &faults, 100 + trial);
            }
        }
    }

    #[test]
    fn label_size_shapes() {
        let g = generators::grid(5, 5);
        let cs = ConnectivityLabeling::new(&g, SchemeKind::CycleSpace, 8, Seed::new(1));
        let sk = ConnectivityLabeling::new(&g, SchemeKind::Sketch, 8, Seed::new(1));
        // Cycle-space edge labels grow with f; sketch labels do not.
        let cs_big = ConnectivityLabeling::new(&g, SchemeKind::CycleSpace, 64, Seed::new(1));
        let sk_big = ConnectivityLabeling::new(&g, SchemeKind::Sketch, 64, Seed::new(1));
        assert!(cs_big.edge_label_bits() > cs.edge_label_bits());
        assert_eq!(sk_big.edge_label_bits(), sk.edge_label_bits());
        assert_eq!(cs.kind(), SchemeKind::CycleSpace);
        assert_eq!(sk.kind(), SchemeKind::Sketch);
    }

    #[test]
    #[should_panic]
    fn mixed_scheme_labels_rejected() {
        let g = generators::path(3);
        let a = ConnectivityLabeling::new(&g, SchemeKind::CycleSpace, 1, Seed::new(1));
        let b = ConnectivityLabeling::new(&g, SchemeKind::Sketch, 1, Seed::new(1));
        let s = a.vertex_label(VertexId::new(0));
        let t = b.vertex_label(VertexId::new(2));
        a.decode(&s, &t, &[]);
    }
}
