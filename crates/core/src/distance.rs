//! `f`-FT approximate distance labels (Section 4, Theorem 1.4 / Lemma 4.3).
//!
//! The transformation of Chechik et al. \[CLPR12\]: for every distance scale
//! `2^i` build a tree cover of `G \ H_i` (heavy edges removed, Eq. (4)),
//! instantiate the FT *connectivity* labels on each cluster subgraph
//! `G_{i,j} = (G \ H_i)[V(T_{i,j})]` with the cover tree as spanning tree,
//! and answer a `⟨s, t, F⟩` distance query by scanning scales upward: the
//! first scale whose home cluster of `s` contains `t` and keeps them
//! connected yields the estimate `(4k−1)·(|F|+1)·2^i`, which satisfies
//!
//! ```text
//! dist_{G\F}(s,t) <= δ <= (8k−2)(|F|+1)·dist_{G\F}(s,t).
//! ```

use ftl_graph::{EdgeId, Graph, VertexId};
use ftl_seeded::Seed;
use ftl_sketch::{SketchParams, SketchScheme};
use ftl_tree_cover::TreeCover;

/// Parameters of the distance labeling.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct DistanceParams {
    /// Stretch parameter `k >= 1`.
    pub k: u32,
    /// Override for the number of sketch units per connectivity labeling
    /// (`None` = the per-graph default). Experiments lower this to trade
    /// failure probability for label size.
    pub units: Option<usize>,
}

impl DistanceParams {
    /// Default parameters for a given stretch `k`.
    pub fn new(k: u32) -> Self {
        DistanceParams { k, units: None }
    }

    /// Sets the sketch-unit override.
    pub fn with_units(self, units: usize) -> Self {
        DistanceParams {
            units: Some(units),
            ..self
        }
    }
}

/// One distance scale `i`: the tree cover of `G \ H_i` and a connectivity
/// labeling per cover tree.
struct Scale {
    /// `ρ = 2^i`.
    radius: u64,
    cover: TreeCover,
    /// One sketch-scheme instance per cover tree (local ids of the
    /// cluster subgraph).
    labelings: Vec<SketchScheme>,
}

/// The result of a distance query.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct DistanceEstimate {
    /// The estimate `δ(s, t, F)`.
    pub distance: u64,
    /// The scale index the answer came from.
    pub scale: usize,
}

/// An `f`-FT approximate distance labeling (Theorem 1.4).
///
/// This struct owns the full label set; queries consult only the label
/// material of `⟨s, t, F⟩` (plus the per-label `i*(s)` home indices), as in
/// the paper.
pub struct DistanceLabeling {
    k: u32,
    scales: Vec<Scale>,
}

impl DistanceLabeling {
    /// Builds the labeling. `K = ⌈log₂(nW)⌉ + 1` scales are materialized.
    pub fn new(graph: &Graph, params: DistanceParams, seed: Seed) -> Self {
        assert!(params.k >= 1);
        let num_scales = graph.num_distance_scales() as usize;
        let mut scales = Vec::with_capacity(num_scales);
        for i in 0..num_scales {
            let radius = 1u64 << i.min(62);
            // Heavy edges H_i: weight exceeding the scale.
            let heavy: Vec<bool> = graph.edges().iter().map(|e| e.weight() > radius).collect();
            let cover = TreeCover::build(graph, &heavy, radius, params.k);
            let mut labelings = Vec::with_capacity(cover.len());
            for (j, tree) in cover.trees.iter().enumerate() {
                let mut sp = SketchParams::for_graph(tree.sub.graph());
                if let Some(u) = params.units {
                    sp = sp.with_units(u);
                }
                let scheme = SketchScheme::label_with_tree(
                    tree.sub.graph(),
                    &tree.tree,
                    &sp,
                    seed.derive(((i as u64) << 32) | j as u64).derive(0x1D),
                    seed.derive(((i as u64) << 32) | j as u64).derive(0x45),
                    None,
                )
                .expect("cover tree spans its cluster");
                labelings.push(scheme);
            }
            scales.push(Scale {
                radius,
                cover,
                labelings,
            });
        }
        DistanceLabeling {
            k: params.k,
            scales,
        }
    }

    /// Stretch parameter `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of scales `K`.
    pub fn num_scales(&self) -> usize {
        self.scales.len()
    }

    /// The worst-case stretch factor `(8k−2)(f+1)` promised for `f` faults.
    pub fn stretch_bound(&self, f: usize) -> u64 {
        (8 * self.k as u64 - 2) * (f as u64 + 1)
    }

    /// Answers a `⟨s, t, F⟩` distance query (the decoding algorithm of
    /// Section 4).
    ///
    /// Returns `None` when `s` and `t` are disconnected in `G \ F`
    /// (δ = ∞ in the paper).
    pub fn query(&self, s: VertexId, t: VertexId, faults: &[EdgeId]) -> Option<DistanceEstimate> {
        if s == t {
            return Some(DistanceEstimate {
                distance: 0,
                scale: 0,
            });
        }
        let fplus1 = faults.len() as u64 + 1;
        for (i, scale) in self.scales.iter().enumerate() {
            let j = scale.cover.home[s.index()];
            let tree = &scale.cover.trees[j];
            let Some(local_t) = tree.sub.to_local_vertex(t) else {
                continue;
            };
            let local_s = tree.sub.to_local_vertex(s).expect("s is in its home tree");
            let scheme = &scale.labelings[j];
            // F_i = F ∩ G_{i,i*(s)}, translated to local edge ids.
            let fl: Vec<_> = faults
                .iter()
                .filter_map(|&e| tree.sub.to_local_edge(e))
                .map(|le| scheme.edge_label(le))
                .collect();
            let out = ftl_sketch::decode(
                &scheme.vertex_label(local_s),
                &scheme.vertex_label(local_t),
                &fl,
            );
            if out.connected {
                return Some(DistanceEstimate {
                    distance: (4 * self.k as u64 - 1) * fplus1 * scale.radius,
                    scale: i,
                });
            }
        }
        None
    }

    /// Total number of (vertex, tree) incidences across all scales — the
    /// size driver of Theorem 1.4's label bound.
    pub fn total_tree_vertices(&self) -> usize {
        self.scales
            .iter()
            .map(|s| s.cover.total_tree_vertices())
            .sum()
    }

    /// Upper bound on the bits of the largest vertex label: for each scale
    /// and each tree containing the vertex, one connectivity vertex label,
    /// plus the home index.
    pub fn max_vertex_label_bits(&self, graph: &Graph) -> usize {
        (0..graph.num_vertices())
            .map(|i| {
                let v = VertexId::new(i);
                self.scales
                    .iter()
                    .map(|sc| {
                        let per_tree: usize = sc
                            .cover
                            .trees
                            .iter()
                            .zip(&sc.labelings)
                            .filter(|(t, _)| t.sub.contains_vertex(v))
                            .map(|(_, l)| l.vertex_label_bits() + 64)
                            .sum();
                        per_tree + 32 // i*(v) index
                    })
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;
    use ftl_graph::shortest_path::distance_avoiding;
    use ftl_graph::traversal::forbidden_mask;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Checks soundness (δ >= dist) and the stretch bound (δ <= bound·dist)
    /// for a batch of random queries.
    fn check_queries(g: &Graph, dl: &DistanceLabeling, f: usize, rng: &mut StdRng, queries: usize) {
        for _ in 0..queries {
            let s = VertexId::new(rng.gen_range(0..g.num_vertices()));
            let t = VertexId::new(rng.gen_range(0..g.num_vertices()));
            let mut faults: Vec<EdgeId> = Vec::new();
            while faults.len() < f.min(g.num_edges()) {
                let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
                if !faults.contains(&e) {
                    faults.push(e);
                }
            }
            let mask = forbidden_mask(g, &faults);
            let truth = distance_avoiding(g, s, t, &mask);
            let est = dl.query(s, t, &faults);
            match (truth, est) {
                (None, None) => {}
                (Some(d), Some(e)) => {
                    assert!(e.distance >= d, "underestimate: {} < {d}", e.distance);
                    let bound = dl.stretch_bound(faults.len());
                    assert!(
                        e.distance <= bound * d.max(1),
                        "stretch violated: {} > {bound} * {d}",
                        e.distance
                    );
                }
                (td, ed) => panic!("connectivity mismatch: truth {td:?} vs estimate {ed:?}"),
            }
        }
    }

    #[test]
    fn unweighted_grid_stretch() {
        let g = generators::grid(5, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for k in [1, 2, 3] {
            let dl = DistanceLabeling::new(&g, DistanceParams::new(k), Seed::new(7));
            for f in [0, 1, 2] {
                check_queries(&g, &dl, f, &mut rng, 30);
            }
        }
    }

    #[test]
    fn weighted_grid_stretch() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::random_weighted_grid(4, 5, 8, &mut rng);
        let dl = DistanceLabeling::new(&g, DistanceParams::new(2), Seed::new(9));
        for f in [0, 1, 2, 3] {
            check_queries(&g, &dl, f, &mut rng, 25);
        }
    }

    #[test]
    fn random_graph_stretch() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::connected_random(30, 0.08, 4, &mut rng);
        let dl = DistanceLabeling::new(&g, DistanceParams::new(2), Seed::new(11));
        for f in [0, 1, 2] {
            check_queries(&g, &dl, f, &mut rng, 30);
        }
    }

    #[test]
    fn identical_endpoints() {
        let g = generators::path(4);
        let dl = DistanceLabeling::new(&g, DistanceParams::new(2), Seed::new(1));
        let est = dl.query(VertexId::new(2), VertexId::new(2), &[EdgeId::new(0)]);
        assert_eq!(est.unwrap().distance, 0);
    }

    #[test]
    fn disconnection_detected() {
        let g = generators::path(5);
        let dl = DistanceLabeling::new(&g, DistanceParams::new(2), Seed::new(2));
        // Cutting edge 2 separates {0,1,2} from {3,4}.
        let est = dl.query(VertexId::new(0), VertexId::new(4), &[EdgeId::new(2)]);
        assert!(est.is_none());
        let est = dl.query(VertexId::new(0), VertexId::new(2), &[EdgeId::new(2)]);
        assert!(est.is_some());
    }

    #[test]
    fn estimates_are_monotone_in_scale() {
        // Nearby pairs should resolve at smaller scales than distant pairs.
        let g = generators::path(32);
        let dl = DistanceLabeling::new(&g, DistanceParams::new(2), Seed::new(3));
        let near = dl.query(VertexId::new(0), VertexId::new(1), &[]).unwrap();
        let far = dl.query(VertexId::new(0), VertexId::new(31), &[]).unwrap();
        assert!(near.scale <= far.scale);
        assert!(near.distance <= far.distance);
    }

    #[test]
    fn label_accounting_positive() {
        let g = generators::grid(4, 4);
        let dl = DistanceLabeling::new(&g, DistanceParams::new(2), Seed::new(4));
        assert!(dl.total_tree_vertices() >= g.num_vertices());
        assert!(dl.max_vertex_label_bits(&g) > 0);
        assert!(dl.num_scales() >= 4);
        assert_eq!(dl.k(), 2);
        assert_eq!(dl.stretch_bound(2), 14 * 3);
    }
}
