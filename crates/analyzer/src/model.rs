//! The source model: brace-scoped functions, `#[cfg(test)]` regions, and
//! `// ftl-analyzer:` annotations, built from one file's token stream.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One function's extent in a file.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's bare name (no path, no generics).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub sig_line: u32,
    /// Token index of the `fn` keyword.
    pub sig_tok: usize,
    /// Token index of the body's opening `{` (== `body_end` for bodyless
    /// trait declarations).
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
    /// Last line of the body.
    pub end_line: u32,
    /// Whether the function lives inside a `#[cfg(test)]` region or is
    /// itself `#[test]`-attributed.
    pub in_test: bool,
    /// Whether a `// ftl-analyzer: hot-path` annotation marks it.
    pub hot: bool,
}

/// Which analyzer rule an `allow(...)` names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// FTL001 — no-alloc hot path.
    HotAlloc,
    /// FTL002 — lock-free read path.
    LockFree,
    /// FTL003 — panic-free serving.
    PanicFree,
    /// FTL004 — deterministic hashing.
    DetHash,
}

impl RuleId {
    /// `FTL00x` code.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::HotAlloc => "FTL001",
            RuleId::LockFree => "FTL002",
            RuleId::PanicFree => "FTL003",
            RuleId::DetHash => "FTL004",
        }
    }

    /// The annotation key used in `// ftl-analyzer: allow(<key>)`.
    pub fn key(self) -> &'static str {
        match self {
            RuleId::HotAlloc => "hot-alloc",
            RuleId::LockFree => "lock-free",
            RuleId::PanicFree => "panic-free",
            RuleId::DetHash => "det-hash",
        }
    }

    /// Parses an annotation key.
    pub fn from_key(key: &str) -> Option<RuleId> {
        match key {
            "hot-alloc" => Some(RuleId::HotAlloc),
            "lock-free" => Some(RuleId::LockFree),
            "panic-free" => Some(RuleId::PanicFree),
            "det-hash" => Some(RuleId::DetHash),
            _ => None,
        }
    }

    /// All rules, in code order.
    pub const ALL: [RuleId; 4] = [
        RuleId::HotAlloc,
        RuleId::LockFree,
        RuleId::PanicFree,
        RuleId::DetHash,
    ];

    /// Parses an `FTL00x` code.
    pub fn from_code(code: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == code)
    }
}

/// The analyzed model of one source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated (stable across platforms).
    pub path: String,
    /// The crate directory name (`engine` for `crates/engine/src/...`).
    pub crate_name: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Functions, in source order.
    pub functions: Vec<Function>,
    /// Per-rule sets of lines exempted by `allow(...)` annotations.
    pub allowed_lines: BTreeMap<RuleId, BTreeSet<u32>>,
    /// Line ranges (inclusive) of `#[cfg(test)]` regions.
    pub test_ranges: Vec<(u32, u32)>,
    /// Annotation problems (unknown rule keys, dangling hot-path markers) —
    /// surfaced as findings so typos cannot silently disable a rule.
    pub annotation_errors: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes and models `src`.
    pub fn parse(path: String, crate_name: String, src: &str) -> SourceFile {
        let lexed = lex(src);
        let mut file = SourceFile {
            path,
            crate_name,
            functions: Vec::new(),
            allowed_lines: BTreeMap::new(),
            test_ranges: Vec::new(),
            annotation_errors: Vec::new(),
            tokens: Vec::new(),
        };
        file.test_ranges = test_ranges(&lexed.tokens);
        file.functions = find_functions(&lexed.tokens, &file.test_ranges);
        file.apply_annotations(&lexed);
        file.tokens = lexed.tokens;
        file
    }

    /// Whether `line` is inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether `line` is exempted from `rule` by an allow annotation.
    pub fn is_allowed(&self, rule: RuleId, line: u32) -> bool {
        self.allowed_lines
            .get(&rule)
            .is_some_and(|s| s.contains(&line))
    }

    /// The innermost function containing `tok` (token index), if any.
    pub fn enclosing_function(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.functions.iter().enumerate() {
            if f.body_start <= tok && tok < f.body_end {
                let better = match best {
                    None => true,
                    // Innermost = smallest span containing the token.
                    Some(j) => {
                        (f.body_end - f.body_start)
                            < (self.functions[j].body_end - self.functions[j].body_start)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// Attaches `hot-path` / `allow(...)` comment annotations.
    fn apply_annotations(&mut self, lexed: &Lexed) {
        // Line classification for "the next code line" resolution:
        // attribute-only lines (starting with `#`) are transparent, so an
        // allow can sit above `#[allow(clippy::...)]` and still reach the
        // code below it.
        let mut first_tok_on_line: BTreeMap<u32, &Token> = BTreeMap::new();
        for t in &lexed.tokens {
            first_tok_on_line.entry(t.line).or_insert(t);
        }
        for c in &lexed.comments {
            let Some(directive) = annotation_text(c) else {
                continue;
            };
            if directive == "hot-path" {
                if !self.mark_next_fn_hot(c.line) {
                    self.annotation_errors.push((
                        c.line,
                        "dangling `ftl-analyzer: hot-path` (no fn follows within 8 lines)"
                            .to_string(),
                    ));
                }
            } else if let Some(rest) = directive.strip_prefix("allow(") {
                let Some(end) = rest.find(')') else {
                    self.annotation_errors
                        .push((c.line, format!("malformed allow annotation: `{directive}`")));
                    continue;
                };
                let key = &rest[..end];
                let Some(rule) = RuleId::from_key(key) else {
                    self.annotation_errors.push((
                        c.line,
                        format!(
                            "unknown rule `{key}` in allow (expected one of: \
                             hot-alloc, lock-free, panic-free, det-hash)"
                        ),
                    ));
                    continue;
                };
                let lines = self.allowed_lines.entry(rule).or_default();
                lines.insert(c.line);
                // The next line bearing code, looking through attribute-only
                // lines, is exempted; if that line opens a fn, the whole fn
                // body is.
                let mut target = None;
                for (&line, tok) in first_tok_on_line.range(c.line + 1..c.line + 9) {
                    if tok.kind == TokenKind::Punct('#') {
                        continue; // attribute line
                    }
                    target = Some(line);
                    break;
                }
                if let Some(line) = target {
                    lines.insert(line);
                    if let Some(f) = self.functions.iter().find(|f| f.sig_line == line) {
                        for l in f.sig_line..=f.end_line {
                            lines.insert(l);
                        }
                    }
                }
            } else {
                self.annotation_errors.push((
                    c.line,
                    format!("unknown ftl-analyzer directive: `{directive}`"),
                ));
            }
        }
    }

    /// Marks the nearest following fn (within 8 lines) hot. Returns whether
    /// one was found.
    fn mark_next_fn_hot(&mut self, line: u32) -> bool {
        if let Some(f) = self
            .functions
            .iter_mut()
            .filter(|f| f.sig_line > line && f.sig_line <= line + 8)
            .min_by_key(|f| f.sig_line)
        {
            f.hot = true;
            true
        } else {
            false
        }
    }
}

/// Extracts the directive from an `// ftl-analyzer: ...` comment.
fn annotation_text(c: &Comment) -> Option<String> {
    let rest = c.text.strip_prefix("ftl-analyzer:")?;
    Some(rest.trim().to_string())
}

/// Line ranges covered by `#[cfg(test)]` items.
fn test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // The attribute's item is the next brace block (a `mod tests {`
            // or a cfg-gated fn); a `;` first means a bodyless item — treat
            // the lines up to the `;` as the region.
            let start_line = tokens[i].line;
            let mut j = i + 7; // at/after the end of `#[cfg(test)]`
            let mut next_i = i + 1;
            let mut region = None;
            while j < tokens.len() {
                if tokens[j].is_punct(';') {
                    region = Some((start_line, tokens[j].line));
                    next_i = j + 1;
                    break;
                }
                if tokens[j].is_punct('{') {
                    let end = match_brace(tokens, j);
                    let end_line = tokens
                        .get(end.saturating_sub(1))
                        .map_or(start_line, |t| t.line);
                    region = Some((start_line, end_line));
                    next_i = end;
                    break;
                }
                j += 1;
            }
            if let Some(r) = region {
                out.push(r);
            }
            i = next_i.max(i + 1);
        } else {
            i += 1;
        }
    }
    out
}

/// Whether `#[cfg(test)]` (or `#[cfg(all(test, ...))]` etc. — anything with
/// a bare `test` inside the cfg) starts at token `i`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if !(tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).and_then(Token::ident) == Some("cfg")
        && tokens.get(i + 3).is_some_and(|t| t.is_punct('(')))
    {
        return false;
    }
    // Scan the attribute's argument for a bare `test` ident.
    let mut depth = 0usize;
    let mut j = i + 3;
    while j < tokens.len() {
        if tokens[j].is_punct('(') {
            depth += 1;
        } else if tokens[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if tokens[j].ident() == Some("test") {
            return true;
        }
        j += 1;
    }
    false
}

/// Index one past the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// All functions with their brace-scoped extents.
fn find_functions(tokens: &[Token], test_ranges: &[(u32, u32)]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].ident() == Some("fn") {
            let sig_tok = i;
            let sig_line = tokens[i].line;
            let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
                i += 1;
                continue; // `fn` in `Fn()` trait sugar or stray
            };
            // Find the body's `{`, stopping at `;` (trait declaration).
            // Angle-bracket depth is ignored on purpose: return types and
            // bounds never contain a bare `{`/`;` outside braces we care
            // about.
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                if tokens[j].is_punct(';') {
                    break;
                }
                if tokens[j].is_punct('{') {
                    body = Some(j);
                    break;
                }
                j += 1;
            }
            let (body_start, body_end) = match body {
                Some(open) => (open, match_brace(tokens, open)),
                None => (j, j),
            };
            let end_line = tokens
                .get(body_end.saturating_sub(1))
                .map_or(sig_line, |t| t.line);
            let marked_test = has_test_attr(tokens, sig_tok);
            let in_region = test_ranges
                .iter()
                .any(|&(a, b)| a <= sig_line && sig_line <= b);
            out.push(Function {
                name: name.to_string(),
                sig_line,
                sig_tok,
                body_start,
                body_end,
                end_line,
                in_test: marked_test || in_region,
                hot: false,
            });
            // Continue *inside* the body too: nested fns are real fns.
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Whether a `#[test]`-like attribute (`#[test]`, `#[bench]`) directly
/// precedes the `fn` at token `sig_tok`, looking back through other
/// attributes and visibility/qualifier keywords.
fn has_test_attr(tokens: &[Token], sig_tok: usize) -> bool {
    // Walk backwards over up to ~40 tokens of attributes/qualifiers.
    let start = sig_tok.saturating_sub(40);
    let mut i = sig_tok;
    while i > start {
        i -= 1;
        if tokens[i].is_punct(']') {
            // find the matching `[` then check the attribute head
            let mut depth = 1usize;
            let mut j = i;
            while j > 0 && depth > 0 {
                j -= 1;
                if tokens[j].is_punct(']') {
                    depth += 1;
                } else if tokens[j].is_punct('[') {
                    depth -= 1;
                }
            }
            let head = tokens.get(j + 1).and_then(Token::ident);
            if head == Some("test") || head == Some("bench") {
                return true;
            }
            if j == 0 || !tokens[j - 1].is_punct('#') {
                return false;
            }
            i = j.saturating_sub(1);
        } else if matches!(
            tokens[i].ident(),
            Some("pub" | "const" | "async" | "unsafe" | "extern") | None
        ) && !tokens[i].is_punct('}')
            && !tokens[i].is_punct(';')
        {
            continue;
        } else {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs".into(), "x".into(), src)
    }

    #[test]
    fn functions_get_extents_and_names() {
        let m = model("fn a() { inner(); }\npub fn b<T: Clone>(t: T) -> T {\n  t\n}\n");
        let names: Vec<_> = m.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(m.functions[1].sig_line, 2);
        assert_eq!(m.functions[1].end_line, 4);
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn t() {}\n}\n";
        let m = model(src);
        assert!(!m.functions[0].in_test);
        assert!(m.functions[1].in_test, "helper inside cfg(test) mod");
        assert!(m.functions[2].in_test);
        assert!(m.in_test_region(4));
        assert!(!m.in_test_region(1));
    }

    #[test]
    fn hot_path_annotation_attaches_through_attributes() {
        let src = "// ftl-analyzer: hot-path\n#[inline]\npub fn kernel(x: u64) -> u64 { x }\nfn cold() {}\n";
        let m = model(src);
        assert!(m.functions[0].hot);
        assert!(!m.functions[1].hot);
        assert!(m.annotation_errors.is_empty());
    }

    #[test]
    fn allow_exempts_next_code_line_and_whole_fn() {
        let src = "\
// ftl-analyzer: allow(panic-free) reason here
#[allow(clippy::unwrap_used)]
fn blessed() {
    foo.unwrap();
}
fn other() {}
";
        let m = model(src);
        assert!(m.is_allowed(RuleId::PanicFree, 4), "whole fn exempted");
        assert!(!m.is_allowed(RuleId::PanicFree, 6));
        assert!(!m.is_allowed(RuleId::LockFree, 4), "only the named rule");
    }

    #[test]
    fn unknown_rule_key_is_an_error_not_a_silent_noop() {
        let m = model("// ftl-analyzer: allow(no-such-rule) oops\nfn f() {}\n");
        assert_eq!(m.annotation_errors.len(), 1);
        assert!(m.annotation_errors[0].1.contains("no-such-rule"));
    }

    #[test]
    fn dangling_hot_path_is_reported() {
        let m = model("// ftl-analyzer: hot-path\nconst X: u32 = 1;\n");
        assert_eq!(m.annotation_errors.len(), 1);
    }

    #[test]
    fn enclosing_function_picks_innermost() {
        let src = "fn outer() {\n fn inner() { body(); }\n}\n";
        let m = model(src);
        let body_tok = m
            .tokens
            .iter()
            .position(|t| t.ident() == Some("body"))
            .unwrap();
        let idx = m.enclosing_function(body_tok).unwrap();
        assert_eq!(m.functions[idx].name, "inner");
    }
}
