//! ftl-analyzer — repo-invariant static analysis for the ftl workspace.
//!
//! Four invariants the type system cannot state are enforced lexically:
//!
//! * **FTL001** no-alloc hot path — `// ftl-analyzer: hot-path` functions
//!   and their transitive workspace callees never allocate;
//! * **FTL002** lock-free reads — `ftl-engine` holds no lock outside the
//!   annotated writer side of `epoch.rs`;
//! * **FTL003** panic-free serving — `ftl-engine`/`ftl-labels` non-test
//!   code never unwraps, panics, or slice-indexes (ratcheted via
//!   `analyzer-baseline.toml`);
//! * **FTL004** deterministic hashing — label/store code never uses the
//!   default-hasher `HashMap`/`HashSet`.
//!
//! The crate is dependency-free: a small Rust lexer ([`lexer`]), a
//! function/annotation model ([`model`]), the rule engine ([`rules`]), and
//! the ratchet baseline ([`baseline`]). `src/main.rs` wraps them in the
//! `cargo run -p ftl-analyzer -- --check` CLI that CI runs; see
//! `docs/static-analysis.md` for the day-to-day workflow.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod rules;

pub use model::{RuleId, SourceFile};
pub use rules::{run_all, Finding};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collects and models every `crates/*/src/**.rs` file under `root`.
///
/// Files are returned sorted by repo-relative path so every downstream
/// artifact (diagnostics, baselines) is deterministic. Fixture trees
/// (anything outside a crate's `src/`) are never picked up.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads.
pub fn walk_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut paths: Vec<(String, PathBuf)> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let crate_name = entry.file_name().to_string_lossy().into_owned();
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut |p| paths.push((crate_name.clone(), p)))?;
        }
    }
    paths.sort_by(|a, b| a.1.cmp(&b.1));
    let mut files = Vec::with_capacity(paths.len());
    for (crate_name, path) in paths {
        let text = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::parse(rel, crate_name, &text));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, push: &mut dyn FnMut(PathBuf)) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, push)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            push(path);
        }
    }
    Ok(())
}
