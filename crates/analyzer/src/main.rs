//! The `ftl-analyzer` CLI.
//!
//! ```text
//! cargo run -p ftl-analyzer -- --check            # enforce all rules (CI)
//! cargo run -p ftl-analyzer -- --check-baseline   # fail if the ratchet is stale
//! cargo run -p ftl-analyzer -- --write-baseline   # regenerate analyzer-baseline.toml
//! cargo run -p ftl-analyzer -- --explain FTL003   # long-form rule documentation
//! ```
//!
//! Exit codes: `0` clean, `1` findings/stale baseline, `2` usage or I/O
//! error. Diagnostics print as `path:line: FTL00x: message`, one per line,
//! so CI logs and editors can jump straight to the site.

use ftl_analyzer::model::RuleId;
use ftl_analyzer::{baseline, rules};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Check,
    CheckBaseline,
    WriteBaseline,
}

struct Args {
    mode: Mode,
    root: PathBuf,
    baseline_path: Option<PathBuf>,
    explain: Option<String>,
}

const USAGE: &str = "\
ftl-analyzer — repo-invariant static analysis for the ftl workspace

USAGE:
    cargo run -p ftl-analyzer -- [MODE] [OPTIONS]

MODES (default: --check):
    --check             run all rules; fail on findings above the baseline
    --check-baseline    fail when the ratchet baseline is stale (counts must shrink)
    --write-baseline    regenerate the baseline from current findings
    --explain FTL00x    print the long-form documentation for one rule

OPTIONS:
    --root PATH         workspace root (default: nearest ancestor with crates/)
    --baseline PATH     baseline file (default: <root>/analyzer-baseline.toml)

RULES:
    FTL001  no-alloc hot path       FTL003  panic-free serving
    FTL002  lock-free read path     FTL004  deterministic hashing
";

fn parse_args() -> Result<Args, String> {
    let mut mode = Mode::Check;
    let mut root = None;
    let mut baseline_path = None;
    let mut explain = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--check-baseline" => mode = Mode::CheckBaseline,
            "--write-baseline" => mode = Mode::WriteBaseline,
            "--explain" => {
                explain = Some(
                    it.next()
                        .ok_or_else(|| "--explain needs a rule code (e.g. FTL001)".to_string())?,
                );
            }
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--root needs a path".to_string())?,
                ));
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--baseline needs a path".to_string())?,
                ));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => discover_root()?,
    };
    Ok(Args {
        mode,
        root,
        baseline_path,
        explain,
    })
}

/// Walks up from the current directory to the nearest ancestor containing
/// a `crates/` directory (the workspace root, whether invoked from the
/// root or from inside a crate).
fn discover_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir: &Path = &cwd;
    loop {
        if dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(format!(
                    "no workspace root (directory with crates/) above {}",
                    cwd.display()
                ))
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(code) = &args.explain {
        return match RuleId::from_code(code) {
            Some(rule) => {
                println!("{}", rules::explain(rule));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown rule `{code}` (expected FTL001..FTL004)");
                ExitCode::from(2)
            }
        };
    }

    let baseline_path = args
        .baseline_path
        .clone()
        .unwrap_or_else(|| args.root.join("analyzer-baseline.toml"));

    let files = match ftl_analyzer::walk_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: walking {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let findings = rules::run_all(&files);

    match args.mode {
        Mode::WriteBaseline => {
            let entries = baseline::from_findings(&findings);
            let text = baseline::render(&entries);
            if let Err(e) = std::fs::write(&baseline_path, text) {
                eprintln!("error: writing {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            println!(
                "wrote {} ({} entr{})",
                baseline_path.display(),
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" }
            );
            ExitCode::SUCCESS
        }
        Mode::Check => {
            let entries = match load_baseline(&baseline_path) {
                Ok(e) => e,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(2);
                }
            };
            let applied = baseline::apply(&findings, &entries);
            for f in &applied.violations {
                println!("{}", f.render());
            }
            println!(
                "ftl-analyzer: {} file(s), {} finding(s) above baseline, {} baselined",
                files.len(),
                applied.violations.len(),
                applied.absorbed
            );
            if applied.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                println!("run `cargo run -p ftl-analyzer -- --explain <rule>` for the invariant");
                ExitCode::FAILURE
            }
        }
        Mode::CheckBaseline => {
            let entries = match load_baseline(&baseline_path) {
                Ok(e) => e,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(2);
                }
            };
            let problems = baseline::staleness(&findings, &entries);
            for p in &problems {
                println!("{p}");
            }
            if problems.is_empty() {
                println!(
                    "ftl-analyzer: baseline fresh ({} entr{})",
                    entries.len(),
                    if entries.len() == 1 { "y" } else { "ies" }
                );
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// A missing baseline file is an empty baseline (zero allowances), not an
/// error — fresh checkouts before the first `--write-baseline` still work.
fn load_baseline(path: &Path) -> Result<Vec<baseline::Entry>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => baseline::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}
