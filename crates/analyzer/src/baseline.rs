//! The ratchet baseline: committed per-`(rule, file)` finding allowances.
//!
//! `analyzer-baseline.toml` records how many findings of each rule each
//! file is allowed to carry. `--check` fails only when a file *exceeds*
//! its allowance (new debt); `--check-baseline` fails when a file is
//! *under* its allowance or gone (stale baseline — the entry must be
//! tightened so the debt can never quietly grow back). The file is plain
//! TOML with one table shape, parsed by hand so the analyzer stays
//! dependency-free:
//!
//! ```toml
//! [[entry]]
//! rule = "FTL003"
//! file = "crates/labels/src/component_tree.rs"
//! count = 1
//! ```

use crate::model::RuleId;
use crate::rules::Finding;
use std::collections::BTreeMap;

/// One baseline allowance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Which rule.
    pub rule: RuleId,
    /// Repo-relative file.
    pub file: String,
    /// Allowed finding count.
    pub count: u32,
}

/// Parses the baseline file. Unknown keys and malformed lines are hard
/// errors — a baseline that silently drops entries would un-ratchet.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    let mut cur: Option<(Option<RuleId>, Option<String>, Option<u32>)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[entry]]" {
            finish(&mut cur, &mut entries, lineno)?;
            cur = Some((None, None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("baseline line {lineno}: expected `key = value`"));
        };
        let Some(cur) = cur.as_mut() else {
            return Err(format!(
                "baseline line {lineno}: key outside an [[entry]] table"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "rule" => {
                let code = unquote(value)
                    .ok_or_else(|| format!("baseline line {lineno}: rule must be a string"))?;
                let rule = RuleId::from_code(code)
                    .ok_or_else(|| format!("baseline line {lineno}: unknown rule `{code}`"))?;
                cur.0 = Some(rule);
            }
            "file" => {
                let file = unquote(value)
                    .ok_or_else(|| format!("baseline line {lineno}: file must be a string"))?;
                cur.1 = Some(file.to_string());
            }
            "count" => {
                let count: u32 = value
                    .parse()
                    .map_err(|_| format!("baseline line {lineno}: count must be an integer"))?;
                cur.2 = Some(count);
            }
            other => {
                return Err(format!("baseline line {lineno}: unknown key `{other}`"));
            }
        }
    }
    finish(&mut cur, &mut entries, text.lines().count() + 1)?;
    Ok(entries)
}

fn finish(
    cur: &mut Option<(Option<RuleId>, Option<String>, Option<u32>)>,
    entries: &mut Vec<Entry>,
    lineno: usize,
) -> Result<(), String> {
    if let Some((rule, file, count)) = cur.take() {
        let (Some(rule), Some(file), Some(count)) = (rule, file, count) else {
            return Err(format!(
                "baseline: entry ending before line {lineno} is missing rule, file, or count"
            ));
        };
        entries.push(Entry { rule, file, count });
    }
    Ok(())
}

fn unquote(v: &str) -> Option<&str> {
    v.strip_prefix('"')?.strip_suffix('"')
}

/// Renders a baseline file deterministically (sorted by rule then file).
pub fn render(entries: &[Entry]) -> String {
    let mut sorted: Vec<&Entry> = entries.iter().collect();
    sorted.sort_by(|a, b| (a.rule, &a.file).cmp(&(b.rule, &b.file)));
    let mut out = String::from(
        "# ftl-analyzer ratchet baseline — pre-existing findings the repo is\n\
         # still allowed to carry. Counts may only shrink: `--check` fails above\n\
         # a count, `--check-baseline` fails below one (tighten the entry).\n\
         # Regenerate with `cargo run -p ftl-analyzer -- --write-baseline`.\n",
    );
    for e in sorted {
        out.push_str(&format!(
            "\n[[entry]]\nrule = \"{}\"\nfile = \"{}\"\ncount = {}\n",
            e.rule.code(),
            e.file,
            e.count
        ));
    }
    out
}

/// Whether a finding may be absorbed by the baseline. Annotation errors
/// (typoed rule keys, dangling hot-path markers) never are — baselining a
/// typo would silently disable the rule it meant to touch.
pub fn baselinable(f: &Finding) -> bool {
    !f.message.starts_with("annotation error")
}

/// Per-`(rule, file)` finding counts.
pub fn summarize(findings: &[Finding]) -> BTreeMap<(RuleId, String), u32> {
    let mut map = BTreeMap::new();
    for f in findings.iter().filter(|f| baselinable(f)) {
        *map.entry((f.rule, f.file.clone())).or_insert(0) += 1;
    }
    map
}

/// Builds a baseline that exactly covers `findings`.
pub fn from_findings(findings: &[Finding]) -> Vec<Entry> {
    summarize(findings)
        .into_iter()
        .map(|((rule, file), count)| Entry { rule, file, count })
        .collect()
}

/// The outcome of applying a baseline to a set of findings.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings not absorbed by the baseline — these fail `--check`.
    /// When a `(rule, file)` group exceeds its allowance, *all* of the
    /// group's findings are reported (the analyzer cannot know which are
    /// the new ones).
    pub violations: Vec<Finding>,
    /// Number of findings absorbed by the baseline.
    pub absorbed: usize,
}

/// Applies `baseline` to `findings` for `--check`.
pub fn apply(findings: &[Finding], baseline: &[Entry]) -> Applied {
    let mut allowed: BTreeMap<(RuleId, &str), u32> = BTreeMap::new();
    for e in baseline {
        allowed.insert((e.rule, e.file.as_str()), e.count);
    }
    let mut out = Applied::default();
    let counts = summarize(findings);
    for f in findings {
        if !baselinable(f) {
            out.violations.push(f.clone());
            continue;
        }
        let have = counts.get(&(f.rule, f.file.clone())).copied().unwrap_or(0);
        let allow = allowed
            .get(&(f.rule, f.file.as_str()))
            .copied()
            .unwrap_or(0);
        if have > allow {
            out.violations.push(f.clone());
        } else {
            out.absorbed += 1;
        }
    }
    out
}

/// Staleness report for `--check-baseline`: entries whose allowance is no
/// longer fully used (actual < allowed), or whose file no longer produces
/// findings at all. Returns human-readable problems; empty means fresh.
pub fn staleness(findings: &[Finding], baseline: &[Entry]) -> Vec<String> {
    let counts = summarize(findings);
    let mut out = Vec::new();
    for e in baseline {
        let actual = counts.get(&(e.rule, e.file.clone())).copied().unwrap_or(0);
        if actual < e.count {
            out.push(format!(
                "stale baseline entry: {} in {} allows {} finding(s) but only {} remain — \
                 tighten the count (ratchet!)",
                e.rule.code(),
                e.file,
                e.count,
                actual
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: "x".to_string(),
        }
    }

    #[test]
    fn roundtrip() {
        let entries = vec![
            Entry {
                rule: RuleId::PanicFree,
                file: "crates/labels/src/component_tree.rs".into(),
                count: 1,
            },
            Entry {
                rule: RuleId::HotAlloc,
                file: "crates/engine/src/engine.rs".into(),
                count: 2,
            },
        ];
        let text = render(&entries);
        let mut parsed = parse(&text).unwrap();
        parsed.sort_by_key(|e| (e.rule, e.file.clone()));
        let mut want = entries.clone();
        want.sort_by_key(|e| (e.rule, e.file.clone()));
        assert_eq!(parsed, want);
    }

    #[test]
    fn parse_rejects_unknown_rule_and_bare_keys() {
        assert!(parse("[[entry]]\nrule = \"FTL999\"\nfile = \"x\"\ncount = 1\n").is_err());
        assert!(parse("rule = \"FTL001\"\n").is_err());
        assert!(parse("[[entry]]\nrule = \"FTL001\"\nfile = \"x\"\n").is_err());
    }

    #[test]
    fn apply_absorbs_up_to_allowance_and_flags_excess() {
        let baseline = vec![Entry {
            rule: RuleId::PanicFree,
            file: "a.rs".into(),
            count: 2,
        }];
        let ok = apply(
            &[
                finding(RuleId::PanicFree, "a.rs", 1),
                finding(RuleId::PanicFree, "a.rs", 2),
            ],
            &baseline,
        );
        assert!(ok.violations.is_empty());
        assert_eq!(ok.absorbed, 2);

        let over = apply(
            &[
                finding(RuleId::PanicFree, "a.rs", 1),
                finding(RuleId::PanicFree, "a.rs", 2),
                finding(RuleId::PanicFree, "a.rs", 3),
            ],
            &baseline,
        );
        assert_eq!(over.violations.len(), 3, "whole group reported on excess");

        let other = apply(&[finding(RuleId::PanicFree, "b.rs", 1)], &baseline);
        assert_eq!(
            other.violations.len(),
            1,
            "unlisted file gets zero allowance"
        );
    }

    #[test]
    fn annotation_errors_are_never_absorbed() {
        let f = Finding {
            rule: RuleId::HotAlloc,
            file: "a.rs".into(),
            line: 1,
            message: "annotation error: unknown rule `hot-allok`".into(),
        };
        let baseline = vec![Entry {
            rule: RuleId::HotAlloc,
            file: "a.rs".into(),
            count: 5,
        }];
        let applied = apply(&[f], &baseline);
        assert_eq!(applied.violations.len(), 1);
    }

    #[test]
    fn staleness_flags_underused_entries() {
        let baseline = vec![Entry {
            rule: RuleId::PanicFree,
            file: "a.rs".into(),
            count: 3,
        }];
        let fresh = staleness(
            &[
                finding(RuleId::PanicFree, "a.rs", 1),
                finding(RuleId::PanicFree, "a.rs", 2),
                finding(RuleId::PanicFree, "a.rs", 3),
            ],
            &baseline,
        );
        assert!(fresh.is_empty());
        let stale = staleness(&[finding(RuleId::PanicFree, "a.rs", 1)], &baseline);
        assert_eq!(stale.len(), 1);
        let gone = staleness(&[], &baseline);
        assert_eq!(gone.len(), 1);
    }
}
