//! The rule engine: four repo invariants over the modeled source tree.
//!
//! | rule | invariant |
//! |------|-----------|
//! | FTL001 | functions annotated `// ftl-analyzer: hot-path`, and every workspace function they transitively call, perform no heap allocation (`Vec::new`, `vec!`, `to_vec`, `collect`, `.clone()`, `Box::new`, `format!`, `String::from`) |
//! | FTL002 | `ftl-engine` holds no lock on the read path (`Mutex`/`RwLock`/`.lock()`/`.read()`/`.write()`) — only `epoch.rs`'s annotated writer side may; `ftl-server` and `ftl-chaos` locking (`Mutex`/`RwLock`/`.lock()`) is confined to annotated sites (`.read()`/`.write()` there are socket I/O); `ftl-obs` is lock-free outright (atomics only, wide trigger set, no blessed side) |
//! | FTL003 | `ftl-engine`/`ftl-labels`/`ftl-server`/`ftl-obs`/`ftl-chaos` non-test code never panics (`unwrap`/`expect`/`panic!`/`unreachable!`/slice-index-without-get) |
//! | FTL004 | label/store code hashes deterministically (no default-hasher `HashMap`/`HashSet`/`RandomState`; use `ftl_seeded::DetHashMap`) |
//!
//! Every check runs on lexed tokens (never raw text) and honors
//! `// ftl-analyzer: allow(<rule>)` exemptions recorded in the model.
//! Rule FTL003 carries a committed ratchet baseline for pre-existing debt;
//! the others hold at zero.

use crate::lexer::{Token, TokenKind};
use crate::model::{Function, RuleId, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant.
    pub rule: RuleId,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// `path:line: FTL00x: message` — the CI-greppable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.code(),
            self.message
        )
    }
}

/// Long-form rule documentation for `--explain`.
pub fn explain(rule: RuleId) -> &'static str {
    match rule {
        RuleId::HotAlloc => {
            "FTL001 · no-alloc hot path\n\
             \n\
             Functions annotated `// ftl-analyzer: hot-path` (directly above the\n\
             fn, attributes in between are fine) and every workspace function\n\
             they transitively call must not allocate: Vec::new, vec!, to_vec,\n\
             collect, .clone(), Box::new, format!, and String::from are banned.\n\
             Arc::clone/Rc::clone (refcount bumps) are allowed. Arena reuse\n\
             (extend_from_slice, resize, copy_from) is the idiom instead.\n\
             \n\
             The seeded hot set: Engine::execute's sidecar query path (answer,\n\
             vertex_anc, the DecodedSidecar accessors), EliminatedFaultSet's\n\
             per-query checks, ftl-gf2's xor_into/count_ones_and/express_with,\n\
             and the sketch toggle kernels.\n\
             \n\
             Exempt one call site with `// ftl-analyzer: allow(hot-alloc) why`\n\
             on the line above; that also stops call-graph traversal through it.\n\
             The runtime twin is the counting-allocator test\n\
             crates/engine/tests/alloc_free.rs."
        }
        RuleId::LockFree => {
            "FTL002 · lock-free read path\n\
             \n\
             ftl-engine must not name Mutex or RwLock, nor call .lock()/.read()\n\
             /.write(), anywhere outside the annotated writer side of epoch.rs.\n\
             Store reads are `&self` over frozen shards and epoch pinning is one\n\
             Arc clone; a lock on the serving path would let a slow writer stall\n\
             every reader.\n\
             \n\
             ftl-server is also in scope, with a narrower trigger set:\n\
             `Mutex`/`RwLock` mentions and `.lock()` calls (`.read()`/\n\
             `.write()` there are socket I/O, not locks). Its locking is\n\
             deliberate but concentrated: the poison-recovering `Slot`\n\
             wrapper in locked.rs, the batcher's window mutex/condvar, and\n\
             the per-connection writer slots, all annotated.\n\
             \n\
             ftl-chaos shares the server's narrow trigger set (its pumps\n\
             are socket `.read()`/`.write()` all over) with no blessed\n\
             side at all: the proxy coordinates through atomics, so any\n\
             `Mutex`/`RwLock`/`.lock()` mention there is a finding.\n\
             \n\
             ftl-obs gets the engine's wide trigger set with *no* blessed\n\
             side: the metrics record path is relaxed atomics only, so any\n\
             lock mention in crates/obs is a finding.\n\
             \n\
             The blessed exemptions carry\n\
             `// ftl-analyzer: allow(lock-free) why` — today that is the\n\
             EpochStore publication slot in crates/engine/src/epoch.rs plus\n\
             ftl-server's locked.rs/batcher.rs."
        }
        RuleId::PanicFree => {
            "FTL003 · panic-free serving\n\
             \n\
             Non-test code in ftl-engine, ftl-labels, ftl-server,\n\
             ftl-obs, and ftl-chaos must not\n\
             call .unwrap() or .expect(), must not invoke panic! or\n\
             unreachable!, and is\n\
             flagged for slice indexing (`x[i]`, `x[a..b]`) which panics out of\n\
             bounds — use .get()/.get_mut() or a match. Typed errors\n\
             (StoreError, WireError, EngineError, LiveStoreError) are the\n\
             serving-path alternative.\n\
             \n\
             Pre-existing debt is ratcheted: analyzer-baseline.toml records the\n\
             allowed per-file finding counts; --check fails only above the\n\
             baseline, and --check-baseline fails when the baseline is stale\n\
             (actual < allowed), so the debt can only shrink. Deliberate\n\
             panics (the chaos-injection hook) carry\n\
             `// ftl-analyzer: allow(panic-free) why`."
        }
        RuleId::DetHash => {
            "FTL004 · deterministic hashing\n\
             \n\
             Label/store code (ftl-labels, ftl-cycle-space, ftl-sketch,\n\
             ftl-server, ftl-obs, ftl-chaos, and the\n\
             engine's store.rs/cache.rs) must not use std's default-hasher\n\
             HashMap/HashSet (RandomState is keyed per process, so iteration\n\
             order — and anything derived from it, like sidecar placement or\n\
             eviction order — varies run to run). Use ftl_seeded::DetHashMap/\n\
             DetHashSet, which wrap the same SplitMix64 mixing the shard router\n\
             already relies on, behind a fixed key.\n\
             \n\
             clippy.toml's disallowed-types mirrors this workspace-wide for\n\
             explicit RandomState/Mutex/RwLock mentions."
        }
    }
}

/// Runs every rule over the modeled tree.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        for (line, msg) in &f.annotation_errors {
            // Annotation typos are reported under the rule they tried to
            // touch conservatively as FTL001 (any rule would do — the point
            // is a non-zero exit).
            findings.push(Finding {
                rule: RuleId::HotAlloc,
                file: f.path.clone(),
                line: *line,
                message: format!("annotation error: {msg}"),
            });
        }
    }
    findings.extend(rule_hot_alloc(files));
    findings.extend(rule_lock_free(files));
    findings.extend(rule_panic_free(files));
    findings.extend(rule_det_hash(files));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------- FTL001

/// Keywords that look like calls (`if x(...)` never happens, but `match`,
/// `return`, etc. can precede `(`).
const NON_CALL_IDENTS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "where", "pub", "use", "mod", "struct", "enum",
    "trait", "type", "const", "static", "crate", "self", "Self", "super", "dyn", "unsafe", "async",
    "await",
];

fn rule_hot_alloc(files: &[SourceFile]) -> Vec<Finding> {
    // Workspace function index by bare name (non-test fns only, so a test
    // helper named like a kernel can't drag test code into the closure).
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.functions.iter().enumerate() {
            if !g.in_test && g.body_end > g.body_start {
                by_name.entry(&g.name).or_default().push((fi, gi));
            }
        }
    }
    // Transitive closure from the hot-annotated roots, remembering one
    // provenance hop for the diagnostics.
    let mut closure: BTreeMap<(usize, usize), Option<String>> = BTreeMap::new();
    let mut queue: Vec<(usize, usize)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.functions.iter().enumerate() {
            if g.hot {
                closure.insert((fi, gi), None);
                queue.push((fi, gi));
            }
        }
    }
    while let Some((fi, gi)) = queue.pop() {
        let file = &files[fi];
        let fun = &file.functions[gi];
        for callee_name in call_sites(file, fun, RuleId::HotAlloc) {
            if let Some(targets) = by_name.get(callee_name.as_str()) {
                for &(tfi, tgi) in targets {
                    if (tfi, tgi) != (fi, gi) && !closure.contains_key(&(tfi, tgi)) {
                        closure.insert((tfi, tgi), Some(format!("{} ({})", fun.name, file.path)));
                        queue.push((tfi, tgi));
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for (&(fi, gi), via) in &closure {
        let file = &files[fi];
        let fun = &file.functions[gi];
        for (line, what) in banned_allocs(file, fun) {
            let provenance = match via {
                None => String::new(),
                Some(v) => format!(" (in hot closure via {v})"),
            };
            out.push(Finding {
                rule: RuleId::HotAlloc,
                file: file.path.clone(),
                line,
                message: format!(
                    "`{what}` allocates inside hot-path fn `{}`{provenance}",
                    fun.name
                ),
            });
        }
    }
    out
}

/// Bare names of functions called from `fun`'s body, skipping calls on
/// lines exempted for `rule` (an allow both excuses the line and cuts the
/// call-graph edge).
fn call_sites(file: &SourceFile, fun: &Function, rule: RuleId) -> BTreeSet<String> {
    let toks = &file.tokens[fun.body_start..fun.body_end];
    let mut out = BTreeSet::new();
    for (k, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if NON_CALL_IDENTS.contains(&name) {
            continue;
        }
        if file.is_allowed(rule, t.line) {
            continue;
        }
        // A call is `name (` or `name ::<` (turbofish); a method call is
        // `. name (` which the first shape already covers.
        let next = toks.get(k + 1);
        let is_call = match next {
            Some(n) if n.is_punct('(') => true,
            Some(n) if n.is_punct(':') => {
                toks.get(k + 2).is_some_and(|t2| t2.is_punct(':'))
                    && toks.get(k + 3).is_some_and(|t3| t3.is_punct('<'))
            }
            _ => false,
        };
        if !is_call {
            continue;
        }
        // Calls qualified through a *type* path (`Arc::clone(..)`,
        // `QueryResult::new(..)`) don't traverse by bare name: generic
        // constructor names like `new` would otherwise pull every
        // workspace `fn new` into the hot closure. `Self::helper(..)` and
        // lowercase module paths (`gf2::xor_into(..)`) still traverse, as
        // do method calls and free-fn calls.
        if k >= 3 && toks[k - 1].is_punct(':') && toks[k - 2].is_punct(':') {
            let head = toks[k - 3].ident();
            let type_qualified = head
                .is_some_and(|h| h != "Self" && h.chars().next().is_some_and(char::is_uppercase));
            if type_qualified {
                continue;
            }
        }
        out.insert(name.to_string());
    }
    out
}

/// Banned allocation constructs in `fun`'s body: `(line, what)` pairs.
fn banned_allocs(file: &SourceFile, fun: &Function) -> Vec<(u32, String)> {
    let toks = &file.tokens[fun.body_start..fun.body_end];
    let mut out = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if file.is_allowed(RuleId::HotAlloc, t.line) {
            continue;
        }
        let prev = k.checked_sub(1).and_then(|i| toks.get(i));
        let next = toks.get(k + 1);
        let what = match name {
            "vec" | "format" if next.is_some_and(|n| n.is_punct('!')) => Some(format!("{name}!")),
            "new" if path_prefix_is(toks, k, &["Vec", "Box"]) => {
                Some(format!("{}::new", path_head(toks, k)))
            }
            "from" if path_prefix_is(toks, k, &["String"]) => Some("String::from".into()),
            "to_vec" | "collect" | "clone"
                if prev.is_some_and(|p| p.is_punct('.'))
                    && next.is_some_and(|n| n.is_punct('(') || n.is_punct(':')) =>
            {
                Some(format!(".{name}()"))
            }
            _ => None,
        };
        if let Some(what) = what {
            out.push((t.line, what));
        }
    }
    out
}

/// Whether tokens `k-2`, `k-1` are `Head ::` with `Head` in `heads`.
fn path_prefix_is(toks: &[Token], k: usize, heads: &[&str]) -> bool {
    k >= 3
        && toks[k - 1].is_punct(':')
        && toks[k - 2].is_punct(':')
        && toks[k - 3].ident().is_some_and(|h| heads.contains(&h))
}

fn path_head(toks: &[Token], k: usize) -> &str {
    toks[k - 3].ident().unwrap_or("?")
}

// ---------------------------------------------------------------- FTL002

fn rule_lock_free(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let scoped = files
        .iter()
        .filter(|f| matches!(f.crate_name.as_str(), "engine" | "server" | "obs" | "chaos"));
    for f in scoped {
        // `.read()`/`.write()` only count inside the engine and ftl-obs:
        // in ftl-server and ftl-chaos those are socket I/O (`Read`/`Write`
        // trait calls), not lock acquisition, so only `Mutex`/`RwLock` and
        // `.lock()` fire there. ftl-obs gets the wide trigger set — the
        // metrics record path is atomics-only by contract, with no
        // blessed writer side at all.
        let engine = matches!(f.crate_name.as_str(), "engine" | "obs");
        for (k, t) in f.tokens.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            if f.in_test_region(t.line) || f.is_allowed(RuleId::LockFree, t.line) {
                continue;
            }
            let is_method_call = || {
                let prev = k.checked_sub(1).and_then(|i| f.tokens.get(i));
                let next = f.tokens.get(k + 1);
                prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('('))
            };
            let hit = match name {
                "Mutex" | "RwLock" => Some(format!("`{name}`")),
                "lock" if is_method_call() => Some(format!("`.{name}()`")),
                "read" | "write" if engine && is_method_call() => Some(format!("`.{name}()`")),
                _ => None,
            };
            if let Some(what) = hit {
                let message = match f.crate_name.as_str() {
                    "engine" => format!(
                        "{what} on the engine read path — only epoch.rs's annotated \
                         writer side may hold a lock"
                    ),
                    "obs" => format!(
                        "{what} in ftl-obs — the metrics record path is atomics-only, \
                         with no blessed locking anywhere in the crate"
                    ),
                    "chaos" => format!(
                        "{what} in ftl-chaos — the proxy's pumps coordinate through \
                         atomics only, with no blessed locking anywhere in the crate"
                    ),
                    _ => format!(
                        "{what} in ftl-server outside the annotated `Slot` wrapper — \
                         concentrate locking in locked.rs and the batcher window"
                    ),
                };
                out.push(Finding {
                    rule: RuleId::LockFree,
                    file: f.path.clone(),
                    line: t.line,
                    message,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------- FTL003

fn rule_panic_free(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let scoped = files.iter().filter(|f| {
        matches!(
            f.crate_name.as_str(),
            "engine" | "labels" | "server" | "obs" | "chaos"
        )
    });
    for f in scoped {
        for (k, t) in f.tokens.iter().enumerate() {
            if f.in_test_region(t.line) || f.is_allowed(RuleId::PanicFree, t.line) {
                continue;
            }
            let prev = k.checked_sub(1).and_then(|i| f.tokens.get(i));
            let next = f.tokens.get(k + 1);
            let hit = match &t.kind {
                TokenKind::Ident(name) => match name.as_str() {
                    "unwrap" | "expect"
                        if prev.is_some_and(|p| p.is_punct('.'))
                            && next.is_some_and(|n| n.is_punct('(')) =>
                    {
                        Some(format!("`.{name}()` can panic — return a typed error"))
                    }
                    "panic" | "unreachable" if next.is_some_and(|n| n.is_punct('!')) => {
                        Some(format!("`{name}!` on the serving path"))
                    }
                    _ => None,
                },
                TokenKind::Punct('[') => {
                    // Slice-index heuristic: `[` directly after a value
                    // (identifier, `)`, or `]`) is an index expression,
                    // which panics out of bounds. `vec![`, `#[attr]`, and
                    // type positions don't match.
                    let indexes = prev.is_some_and(|p| {
                        matches!(p.kind, TokenKind::Ident(_))
                            && p.ident().is_none_or(|s| !NON_CALL_IDENTS.contains(&s))
                            || p.is_punct(')')
                            || p.is_punct(']')
                    });
                    if indexes {
                        Some("slice index can panic — prefer `.get()`".to_string())
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(message) = hit {
                out.push(Finding {
                    rule: RuleId::PanicFree,
                    file: f.path.clone(),
                    line: t.line,
                    message,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------- FTL004

/// Whether FTL004 (deterministic hashing) covers this file: all label
/// crates, the server (per-tenant stats keyed by id), the obs registry
/// (a stray map there would sit under the same serving path), the chaos
/// proxy (a map in plan drawing would make storms unreplayable), plus
/// the engine's store and cache.
fn det_hash_scope(f: &SourceFile) -> bool {
    match f.crate_name.as_str() {
        "labels" | "cycle-space" | "sketch" | "server" | "obs" | "chaos" => true,
        "engine" => f.path.ends_with("store.rs") || f.path.ends_with("cache.rs"),
        _ => false,
    }
}

fn rule_det_hash(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| det_hash_scope(f)) {
        for t in &f.tokens {
            let Some(name) = t.ident() else { continue };
            if !matches!(name, "HashMap" | "HashSet" | "RandomState") {
                continue;
            }
            if f.in_test_region(t.line) || f.is_allowed(RuleId::DetHash, t.line) {
                continue;
            }
            out.push(Finding {
                rule: RuleId::DetHash,
                file: f.path.clone(),
                line: t.line,
                message: format!(
                    "default-hasher `{name}` in label/store code — iteration order \
                     must be deterministic; use ftl_seeded::DetHashMap/DetHashSet"
                ),
            });
        }
    }
    out
}
