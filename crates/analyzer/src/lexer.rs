//! A minimal Rust source lexer: just enough to tell code from non-code.
//!
//! The rule engine works on *tokens*, never raw text, so a banned name
//! inside a string literal, a doc comment, or a `r#"raw string"#` can
//! never produce a finding. The lexer therefore understands exactly the
//! constructs that hide text in Rust source:
//!
//! * line comments (`//`, `///`, `//!`) — kept separately, because the
//!   analyzer's own annotations (`// ftl-analyzer: ...`) live in them;
//! * block comments (`/* */`), including nesting;
//! * string and byte-string literals with escapes;
//! * raw (byte) strings `r"…"` / `r#"…"#` / `br##"…"##` at any guard depth;
//! * char literals, disambiguated from lifetimes (`'a`).
//!
//! Everything else becomes an identifier/number token or a one-character
//! punctuation token, each carrying its 1-based source line.

/// One meaningful source token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Token payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier, keyword, or number literal (`fn`, `Vec`, `0x3F`).
    Ident(String),
    /// A single punctuation character (`{`, `.`, `!`, …).
    Punct(char),
    /// A (possibly raw, possibly byte) string literal. The content is
    /// dropped — only its presence and position matter.
    Str,
    /// A char literal (content dropped).
    Char,
    /// A lifetime such as `'a` (kept distinct so `'a` never parses as an
    /// unterminated char literal).
    Lifetime,
}

/// A line comment, with its marker stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the `//` (or `///` / `//!`) marker, trimmed.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs at end of
/// file are tolerated (the token simply ends there) — the analyzer must
/// never panic on weird input, it only ever *reads* the tree.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let mut text = src[start..j].trim_start_matches(['/', '!']);
                text = text.trim();
                out.comments.push(Comment {
                    line,
                    text: text.to_string(),
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comments, like rustc.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(b, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line: tok_line,
                });
            }
            b'\'' => {
                // Either a char literal ('x', '\n', '\u{1F600}') or a
                // lifetime ('a, 'static). A lifetime is a quote followed by
                // an identifier NOT closed by a quote.
                let tok_line = line;
                if let Some(next) = char_literal_end(b, i) {
                    // count newlines inside (multi-byte chars can't contain
                    // raw newlines, but escapes can't either; be safe)
                    for &cc in &b[i..next] {
                        if cc == b'\n' {
                            line += 1;
                        }
                    }
                    i = next;
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        line: tok_line,
                    });
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    i = j.max(i + 1);
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line: tok_line,
                    });
                }
            }
            _ if is_raw_string_start(b, i) => {
                let tok_line = line;
                i = skip_raw_string(b, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line: tok_line,
                });
            }
            _ if c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' => {
                let tok_line = line;
                i = skip_string(b, i + 2, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line: tok_line,
                });
            }
            _ if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(src[start..j].to_string()),
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_whitespace() => {
                i += 1;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Advances past a (non-raw) string body whose opening quote is already
/// consumed; returns the index after the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Whether `r"`, `r#"`, `br"`, `br#"` (any guard depth) starts at `i`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if j < b.len() && b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    // Only treat as raw string if `r`/`br` is not part of a longer
    // identifier (e.g. `for` / `br` variables are handled by the ident
    // branch ordering: this is called before ident lexing, so check the
    // preceding char).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Advances past a raw string starting at `i` (at the `r`/`b`); returns the
/// index after the closing quote+guards.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if i < b.len() && b[i] == b'b' {
        i += 1;
    }
    i += 1; // the 'r'
    let mut guards = 0usize;
    while i < b.len() && b[i] == b'#' {
        guards += 1;
        i += 1;
    }
    i += 1; // the opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut k = 0usize;
            while k < guards && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == guards {
                return i + 1 + guards;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// If a char literal starts at the quote at `i`, the index just past its
/// closing quote; `None` when it is a lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escape: skip the backslash and the escape head, then scan to the
        // closing quote (covers \u{...}).
        j += 2;
        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
            j += 1;
        }
        return if j < b.len() && b[j] == b'\'' {
            Some(j + 1)
        } else {
            None
        };
    }
    // One (possibly multi-byte) char then a closing quote.
    let mut k = j + 1;
    while k < b.len() && (b[k] & 0xC0) == 0x80 {
        k += 1; // UTF-8 continuation bytes
    }
    if k < b.len() && b[k] == b'\'' {
        Some(k + 1)
    } else {
        None
    }
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_content() {
        let src = r##"
            // comment with unwrap inside
            /* block with panic! inside */
            let s = "vec![1] .unwrap()";
            let r = r#"collect::<Vec<_>> "quoted" stuff"#;
            let b = b"Box::new";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids
            .iter()
            .any(|s| s == "unwrap" || s == "panic" || s == "vec"));
        assert!(!ids.iter().any(|s| s == "collect" || s == "Box"));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1;\n// ftl-analyzer: hot-path\nfn f() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[0].text, "ftl-analyzer: hot-path");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'z'; x }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 1);
        // The function body after the char literal still lexes.
        assert!(idents(src).contains(&"x".to_string()));
    }

    #[test]
    fn nested_block_comments_and_line_tracking() {
        let src = "/* outer /* inner */ still comment */\nafter();";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].ident(), Some("after"));
        assert_eq!(lexed.tokens[0].line, 2);
    }

    #[test]
    fn raw_string_guard_depths() {
        let src = r####"let x = r##"has "# inside"##; done();"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "done"]);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let src = r#"let s = "a\"b\\"; trailing();"#;
        assert!(idents(src).contains(&"trailing".to_string()));
    }
}
