//! Analyzer self-tests: every rule fires on the bad-corpus fixtures, the
//! exemptions hold, and the real workspace tree is clean modulo the
//! committed ratchet baseline.

use ftl_analyzer::model::RuleId;
use ftl_analyzer::rules::Finding;
use ftl_analyzer::{baseline, rules, walk_workspace};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_findings() -> Vec<Finding> {
    let files = walk_workspace(&fixture_root()).expect("fixture tree walks");
    rules::run_all(&files)
}

/// 1-based line of the first fixture line containing `needle`.
fn line_of(rel: &str, needle: &str) -> u32 {
    let text = std::fs::read_to_string(fixture_root().join(rel)).expect("fixture readable");
    for (i, l) in text.lines().enumerate() {
        if l.contains(needle) {
            return (i + 1) as u32;
        }
    }
    panic!("{needle:?} not found in {rel}");
}

fn has(findings: &[Finding], rule: RuleId, file_suffix: &str, line: u32) -> bool {
    findings
        .iter()
        .any(|f| f.rule == rule && f.file.ends_with(file_suffix) && f.line == line)
}

#[test]
fn ftl001_fires_on_hot_fn_and_transitive_callee_only() {
    let findings = fixture_findings();
    let direct = line_of("crates/engine/src/lib.rs", "Vec::new()");
    let transitive = line_of("crates/engine/src/lib.rs", "let copy = xs.to_vec()");
    let cold = line_of("crates/engine/src/lib.rs", "cold-alloc-site");
    assert!(has(
        &findings,
        RuleId::HotAlloc,
        "engine/src/lib.rs",
        direct
    ));
    assert!(has(
        &findings,
        RuleId::HotAlloc,
        "engine/src/lib.rs",
        transitive
    ));
    // The transitive finding names its provenance.
    let f = findings
        .iter()
        .find(|f| f.rule == RuleId::HotAlloc && f.line == transitive)
        .unwrap();
    assert!(f.message.contains("via hot_kernel"), "{}", f.message);
    // `untouched` allocates but is not in the hot closure.
    assert!(!has(&findings, RuleId::HotAlloc, "engine/src/lib.rs", cold));
}

#[test]
fn ftl002_fires_on_mutex_and_lock_calls_in_engine_and_server() {
    let findings = fixture_findings();
    let use_line = line_of("crates/engine/src/lib.rs", "use std::sync::Mutex");
    let lock_line = line_of("crates/engine/src/lib.rs", "m.lock()");
    assert!(has(
        &findings,
        RuleId::LockFree,
        "engine/src/lib.rs",
        use_line
    ));
    assert!(has(
        &findings,
        RuleId::LockFree,
        "engine/src/lib.rs",
        lock_line
    ));
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == RuleId::LockFree && f.file.contains("labels")),
        "FTL002 never covers labels"
    );
}

#[test]
fn ftl002_server_scope_flags_locks_but_not_socket_read_write() {
    let findings = fixture_findings();
    let use_line = line_of("crates/server/src/net.rs", "use std::sync::Mutex");
    let lock_line = line_of("crates/server/src/net.rs", "m.lock().expect");
    let read_line = line_of("crates/server/src/net.rs", "socket-read-site");
    let write_line = line_of("crates/server/src/net.rs", "socket-write-site");
    let blessed = line_of("crates/server/src/net.rs", "m.lock().map");
    assert!(has(
        &findings,
        RuleId::LockFree,
        "server/src/net.rs",
        use_line
    ));
    assert!(has(
        &findings,
        RuleId::LockFree,
        "server/src/net.rs",
        lock_line
    ));
    assert!(
        !has(&findings, RuleId::LockFree, "server/src/net.rs", read_line),
        "`.read()` in ftl-server is socket I/O, not a lock"
    );
    assert!(
        !has(&findings, RuleId::LockFree, "server/src/net.rs", write_line),
        "`.write()` in ftl-server is socket I/O, not a lock"
    );
    assert!(
        !has(&findings, RuleId::LockFree, "server/src/net.rs", blessed),
        "fn-level allow(lock-free) exempts the slot-style wrapper"
    );
}

#[test]
fn chaos_scope_gets_narrow_lock_triggers_and_panic_and_hash_rules() {
    let findings = fixture_findings();
    let use_lock = line_of("crates/chaos/src/net.rs", "use std::sync::Mutex");
    let lock_line = line_of("crates/chaos/src/net.rs", "m.lock().expect");
    let read_line = line_of("crates/chaos/src/net.rs", "pump-read-site");
    let write_line = line_of("crates/chaos/src/net.rs", "pump-write-site");
    let index_line = line_of("crates/chaos/src/net.rs", "garbage[i]");
    let use_map = line_of("crates/chaos/src/net.rs", "use std::collections::HashMap");
    // FTL002 with the server's narrow trigger set, and the chaos-specific
    // no-blessed-side message.
    assert!(has(
        &findings,
        RuleId::LockFree,
        "chaos/src/net.rs",
        use_lock
    ));
    assert!(has(
        &findings,
        RuleId::LockFree,
        "chaos/src/net.rs",
        lock_line
    ));
    assert!(
        !has(&findings, RuleId::LockFree, "chaos/src/net.rs", read_line),
        "`.read()` in ftl-chaos is pump socket I/O, not a lock"
    );
    assert!(
        !has(&findings, RuleId::LockFree, "chaos/src/net.rs", write_line),
        "`.write()` in ftl-chaos is pump socket I/O, not a lock"
    );
    let lock_msg = findings
        .iter()
        .find(|f| f.rule == RuleId::LockFree && f.file.contains("chaos/src/net.rs"))
        .unwrap();
    assert!(
        lock_msg.message.contains("ftl-chaos"),
        "{}",
        lock_msg.message
    );
    // FTL003 and FTL004 cover the crate like the other serving crates.
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "chaos/src/net.rs",
        lock_line
    ));
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "chaos/src/net.rs",
        index_line
    ));
    assert!(has(&findings, RuleId::DetHash, "chaos/src/net.rs", use_map));
}

#[test]
fn ftl003_fires_on_unwrap_panic_and_index_but_honors_allow_and_tests() {
    let findings = fixture_findings();
    let unwrap = line_of("crates/engine/src/lib.rs", "m.lock().unwrap()");
    let panic = line_of("crates/engine/src/lib.rs", "panic!(\"empty\")");
    let index = line_of("crates/engine/src/lib.rs", "xs[i]");
    let blessed = line_of("crates/engine/src/lib.rs", "unreachable!(\"never\")");
    let expect = line_of("crates/labels/src/store.rs", ".expect(\"present\")");
    let test_unwrap = line_of("crates/labels/src/store.rs", "v.unwrap()");
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "engine/src/lib.rs",
        unwrap
    ));
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "engine/src/lib.rs",
        panic
    ));
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "engine/src/lib.rs",
        index
    ));
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "labels/src/store.rs",
        expect
    ));
    assert!(
        !has(&findings, RuleId::PanicFree, "engine/src/lib.rs", blessed),
        "fn-level allow(panic-free) exempts the whole body"
    );
    assert!(
        !has(
            &findings,
            RuleId::PanicFree,
            "labels/src/store.rs",
            test_unwrap
        ),
        "cfg(test) regions are out of scope"
    );
    // The server crate is in FTL003 scope too.
    let server_expect = line_of("crates/server/src/net.rs", "m.lock().expect");
    let server_index = line_of("crates/server/src/net.rs", "answers[i]");
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "server/src/net.rs",
        server_expect
    ));
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "server/src/net.rs",
        server_index
    ));
}

#[test]
fn ftl004_fires_on_default_hasher_maps_and_honors_allow() {
    let findings = fixture_findings();
    let use_map = line_of(
        "crates/labels/src/store.rs",
        "use std::collections::HashMap",
    );
    let set_line = line_of("crates/labels/src/store.rs", "HashSet::new()");
    let blessed = line_of("crates/labels/src/store.rs", "pub fn blessed");
    assert!(has(
        &findings,
        RuleId::DetHash,
        "labels/src/store.rs",
        use_map
    ));
    assert!(has(
        &findings,
        RuleId::DetHash,
        "labels/src/store.rs",
        set_line
    ));
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == RuleId::DetHash && f.line == set_line)
            .count(),
        2,
        "both HashSet mentions on the line fire"
    );
    assert!(
        !has(&findings, RuleId::DetHash, "labels/src/store.rs", blessed),
        "allow(det-hash) exempts the fn"
    );
    // FTL004 never fires in the engine fixture (lib.rs is not store/cache).
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == RuleId::DetHash && f.file.contains("engine")),
        "FTL004 scope excludes engine files other than store.rs/cache.rs"
    );
    // The server crate (per-tenant stats keyed by id) is in scope.
    let server_map = line_of("crates/server/src/net.rs", "use std::collections::HashMap");
    assert!(has(
        &findings,
        RuleId::DetHash,
        "server/src/net.rs",
        server_map
    ));
}

#[test]
fn obs_scope_gets_wide_lock_triggers_and_panic_and_hash_rules() {
    let findings = fixture_findings();
    let use_lock = line_of("crates/obs/src/registry.rs", "use std::sync::RwLock");
    let read_line = line_of("crates/obs/src/registry.rs", "slot.read().unwrap()");
    let index_line = line_of("crates/obs/src/registry.rs", "counts[i]");
    let use_map = line_of(
        "crates/obs/src/registry.rs",
        "use std::collections::HashMap",
    );
    // FTL002 with the engine's wide trigger set: both the `RwLock`
    // mention and the `.read()` call fire (in ftl-server `.read()` would
    // be socket I/O and stay silent).
    assert!(has(
        &findings,
        RuleId::LockFree,
        "obs/src/registry.rs",
        use_lock
    ));
    assert!(
        has(
            &findings,
            RuleId::LockFree,
            "obs/src/registry.rs",
            read_line
        ),
        "`.read()` fires in ftl-obs — wide triggers, no blessed side"
    );
    let lock_msg = findings
        .iter()
        .find(|f| f.rule == RuleId::LockFree && f.file.contains("obs/src/registry.rs"))
        .unwrap();
    assert!(
        lock_msg.message.contains("atomics-only"),
        "{}",
        lock_msg.message
    );
    // FTL003 and FTL004 cover the crate like the other serving crates.
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "obs/src/registry.rs",
        read_line
    ));
    assert!(has(
        &findings,
        RuleId::PanicFree,
        "obs/src/registry.rs",
        index_line
    ));
    assert!(has(
        &findings,
        RuleId::DetHash,
        "obs/src/registry.rs",
        use_map
    ));
}

#[test]
fn annotation_errors_fire_and_cannot_be_baselined() {
    let findings = fixture_findings();
    let typo = line_of("crates/engine/src/typo.rs", "allow(hot-allok)");
    let dangling = line_of("crates/engine/src/typo.rs", "ftl-analyzer: hot-path");
    let errors: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.file.ends_with("typo.rs"))
        .collect();
    assert!(errors
        .iter()
        .any(|f| f.line == typo && f.message.contains("hot-allok")));
    assert!(errors
        .iter()
        .any(|f| f.line == dangling && f.message.contains("dangling")));
    // Even an absurdly generous baseline does not absorb them.
    let generous = vec![baseline::Entry {
        rule: RuleId::HotAlloc,
        file: errors[0].file.clone(),
        count: 1000,
    }];
    let applied = baseline::apply(&findings, &generous);
    assert!(applied
        .violations
        .iter()
        .any(|f| f.file.ends_with("typo.rs")));
}

#[test]
fn banned_names_in_strings_and_comments_never_fire() {
    let findings = fixture_findings();
    let line = line_of("crates/engine/src/lib.rs", "just a comment");
    let lit = line_of("crates/engine/src/lib.rs", "\"Mutex .lock()");
    assert!(findings
        .iter()
        .filter(|f| f.file.ends_with("engine/src/lib.rs"))
        .all(|f| f.line != line && f.line != lit));
}

#[test]
fn real_tree_is_clean_modulo_committed_baseline() {
    let root = repo_root();
    let files = walk_workspace(&root).expect("workspace walks");
    assert!(
        files.len() > 50,
        "expected the full workspace, got {}",
        files.len()
    );
    let findings = rules::run_all(&files);
    let text = std::fs::read_to_string(root.join("analyzer-baseline.toml"))
        .expect("committed baseline exists");
    let entries = baseline::parse(&text).expect("baseline parses");
    let applied = baseline::apply(&findings, &entries);
    let rendered: Vec<String> = applied.violations.iter().map(Finding::render).collect();
    assert!(
        applied.violations.is_empty(),
        "real tree has findings above baseline:\n{}",
        rendered.join("\n")
    );
    // And the ratchet is fresh: no over-generous entries.
    let stale = baseline::staleness(&findings, &entries);
    assert!(stale.is_empty(), "stale baseline:\n{}", stale.join("\n"));
}

#[test]
fn hot_set_is_nonempty_on_the_real_tree() {
    // The seeded hot-path annotations must actually attach — an analyzer
    // that silently finds zero hot functions enforces nothing.
    let files = walk_workspace(&repo_root()).expect("workspace walks");
    let hot: Vec<String> = files
        .iter()
        .flat_map(|f| f.functions.iter().filter(|g| g.hot).map(|g| g.name.clone()))
        .collect();
    assert!(
        hot.len() >= 8,
        "expected the seeded hot set (gf2 kernels, sketch toggles, sidecar \
         accessors), found only: {hot:?}"
    );
    for expected in ["xor_into", "count_ones_and", "express_with", "vertex_anc"] {
        assert!(
            hot.iter().any(|n| n == expected),
            "missing hot fn {expected}"
        );
    }
}
