//! Bad-corpus fixture for the chaos-scoped rules (FTL002 narrow-trigger
//! variant with no blessed side, FTL003, FTL004). Never compiled — only
//! lexed by `tests/self_test.rs`.

use std::collections::HashMap; // FTL004: default-hasher map in chaos code
use std::sync::Mutex; // FTL002: Mutex named in the lock-free proxy

pub fn plan_slot(m: &Mutex<u64>) -> u64 {
    *m.lock().expect("poisoned") // FTL002: .lock(); FTL003: .expect()
}

pub fn pump_io(stream: &mut std::net::TcpStream, buf: &mut [u8]) -> usize {
    // Neither of these fires: in ftl-chaos `.read()`/`.write()` are the
    // pumps' socket I/O, not lock acquisition.
    let n = stream.read(buf).unwrap_or(0); // pump-read-site
    let _ = stream.write(buf); // pump-write-site
    n
}

pub fn splice(garbage: &[u8], i: usize) -> u8 {
    garbage[i] // FTL003: slice index without get
}

pub fn plans(map: &HashMap<u64, u32>) -> usize {
    map.len() // FTL004 fired on the signature's HashMap mention
}
