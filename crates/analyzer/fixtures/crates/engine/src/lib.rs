//! Bad-corpus fixture: every engine-scoped rule must fire on this file.
//! Never compiled — only lexed by `tests/self_test.rs`.

use std::sync::Mutex; // FTL002: Mutex named outside epoch.rs

// ftl-analyzer: hot-path
pub fn hot_kernel(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::new(); // FTL001: Vec::new in a hot fn
    out.push(helper(xs));
    out
}

fn helper(xs: &[u64]) -> u64 {
    // Reached transitively from hot_kernel — still FTL001.
    let copy = xs.to_vec(); // FTL001: .to_vec() in the hot closure
    copy.len() as u64
}

fn untouched(xs: &[u64]) -> Vec<u64> {
    // NOT in the hot closure: allocating here is fine for FTL001.
    xs.to_vec() // cold-alloc-site
}

pub fn locked(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap() // FTL002: .lock(); FTL003: .unwrap()
}

pub fn serves(xs: &[u64], i: usize) -> u64 {
    if xs.is_empty() {
        panic!("empty"); // FTL003: panic!
    }
    xs[i] // FTL003: slice index without get
}

// ftl-analyzer: allow(panic-free) fixture: blessed deliberate panic
pub fn blessed_panic() {
    unreachable!("never") // exempted by the fn-level allow above
}

pub fn hidden_in_strings() -> &'static str {
    // None of these fire: banned names live in comments and literals only.
    // .unwrap() panic! Mutex vec![] — just a comment
    "Mutex .lock() .unwrap() panic! vec![Vec::new()]"
}
