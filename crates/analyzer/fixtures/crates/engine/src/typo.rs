//! Fixture: annotation mistakes must surface as findings, never as silent
//! no-ops.

// ftl-analyzer: allow(hot-allok) typo in the rule key
pub fn typoed() {}

// ftl-analyzer: hot-path
pub const DANGLING: u32 = 1; // no fn follows — dangling hot-path marker
