//! Bad-corpus fixture for the obs-scoped rules (FTL002 wide-trigger
//! variant with no blessed side, FTL003, FTL004). Never compiled — only
//! lexed by `tests/self_test.rs`.

use std::collections::HashMap; // FTL004: default-hasher map in obs code
use std::sync::RwLock; // FTL002: RwLock named in the lock-free crate

pub fn guarded(slot: &RwLock<u64>) -> u64 {
    *slot.read().unwrap() // FTL002: .read(); FTL003: .unwrap()
}

pub fn bucket_of(counts: &[u64], i: usize) -> u64 {
    counts[i] // FTL003: slice index without get
}

pub fn by_name(series: &HashMap<String, u64>) -> usize {
    series.len() // FTL004 fired on the signature's HashMap mention
}

// No allow(lock-free) escape hatch here on purpose: unlike engine/server,
// ftl-obs has no blessed writer side, so the fixture carries no blessed
// example — every lock mention above must fire.
