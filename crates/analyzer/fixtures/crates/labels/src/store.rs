//! Bad-corpus fixture for the labels-scoped rules (FTL003 + FTL004).
//! Never compiled — only lexed by `tests/self_test.rs`.

use std::collections::HashMap; // FTL004: default-hasher map in label code
use std::collections::HashSet; // FTL004

pub fn build(keys: &[u64]) -> usize {
    let mut seen: HashSet<u64> = HashSet::new(); // FTL004 (x2 on this line)
    for &k in keys {
        seen.insert(k);
    }
    seen.len()
}

pub fn lookup(map: &HashMap<u64, u64>, k: u64) -> u64 {
    // FTL004 above; FTL003 below.
    *map.get(&k).expect("present")
}

// ftl-analyzer: allow(det-hash) fixture: blessed non-deterministic scratch map
pub fn blessed(map: &HashMap<u64, u64>) -> usize {
    map.len()
}

#[cfg(test)]
mod tests {
    // Test code is out of scope for every rule.
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        assert_eq!(m.len(), 0);
    }
}
