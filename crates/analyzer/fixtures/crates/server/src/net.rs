//! Bad-corpus fixture for the server-scoped rules (FTL002 narrow-trigger
//! variant, FTL003, FTL004). Never compiled — only lexed by
//! `tests/self_test.rs`.

use std::collections::HashMap; // FTL004: default-hasher map in server code
use std::sync::Mutex; // FTL002: Mutex named outside the Slot wrapper

pub fn held(m: &Mutex<u64>) -> u64 {
    *m.lock().expect("poisoned") // FTL002: .lock(); FTL003: .expect()
}

pub fn socket_io(stream: &mut std::net::TcpStream, buf: &mut [u8]) -> usize {
    // Neither of these fires: in ftl-server `.read()`/`.write()` are
    // Read/Write trait calls on sockets, not lock acquisition.
    let n = stream.read(buf).unwrap_or(0); // socket-read-site
    let _ = stream.write(buf); // socket-write-site
    n
}

pub fn demux(answers: &[bool], i: usize) -> bool {
    answers[i] // FTL003: slice index without get
}

pub fn tenants(map: &HashMap<u32, u64>) -> usize {
    map.len() // FTL004 fired on the signature's HashMap mention
}

// ftl-analyzer: allow(lock-free) fixture: blessed slot-style wrapper
pub fn blessed_lock(m: &Mutex<u64>) -> u64 {
    m.lock().map(|g| *g).unwrap_or(0) // exempted by the fn-level allow
}
