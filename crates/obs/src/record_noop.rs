//! The `no-obs` build of the recording primitives: every type is
//! zero-sized, every record is an empty inline stub, every read returns
//! zero, and no clock is ever touched — instrumented call sites compile
//! to nothing, so the bench baseline is bit-for-bit the uninstrumented
//! pipeline.
//!
//! Keep this API identical to [`crate::record`].

use crate::Stage;
use std::marker::PhantomData;

/// A monotonically increasing event count (compiled out: always 0).
#[derive(Debug, Default)]
pub struct Counter {}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {}
    }

    /// Adds one (no-op).
    #[inline]
    pub fn inc(&self) {}

    /// Adds `n` (no-op).
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// The current total (always 0).
    pub fn get(&self) -> u64 {
        0
    }
}

/// A last-writer-wins level (compiled out: always 0).
#[derive(Debug, Default)]
pub struct Gauge {}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge {}
    }

    /// Sets the level (no-op).
    #[inline]
    pub fn set(&self, _v: u64) {}

    /// The current level (always 0).
    pub fn get(&self) -> u64 {
        0
    }
}

/// A log-scale histogram (compiled out: no storage, always empty).
#[derive(Debug, Default)]
pub struct Histogram {}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {}
    }

    /// Records one sample (no-op).
    #[inline]
    pub fn record(&self, _v: u64) {}

    /// Samples recorded so far (always 0).
    pub fn count(&self) -> u64 {
        0
    }

    /// Sum of all recorded samples (always 0).
    pub fn sum(&self) -> u64 {
        0
    }

    /// Nearest-rank percentile (always 0).
    pub fn percentile(&self, _p: f64) -> u64 {
        0
    }
}

/// One histogram per [`Stage`] (compiled out).
#[derive(Debug, Default)]
pub struct StageSet {}

static EMPTY: Histogram = Histogram::new();

impl StageSet {
    /// Empty histograms for every stage.
    pub const fn new() -> Self {
        StageSet {}
    }

    /// Records a wall-clock delta against `stage` (no-op).
    #[inline]
    pub fn record(&self, _stage: Stage, _ns: u64) {}

    /// The histogram backing `stage` (always empty).
    pub fn get(&self, _stage: Stage) -> &Histogram {
        &EMPTY
    }
}

/// An RAII stage timer (compiled out: reads no clock, records nothing).
#[derive(Debug)]
pub struct Span<'a> {
    _p: PhantomData<&'a ()>,
}

impl<'a> Span<'a> {
    /// Starts timing `stage` (no-op).
    #[inline]
    pub fn enter(_stages: &'a StageSet, _stage: Stage) -> Span<'a> {
        Span { _p: PhantomData }
    }

    /// Starts timing into an explicit histogram (no-op).
    #[inline]
    pub fn over(_hist: &'a Histogram) -> Span<'a> {
        Span { _p: PhantomData }
    }
}
