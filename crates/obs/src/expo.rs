//! Prometheus-style text exposition.
//!
//! Rendering is the *cold* side of the crate: it allocates freely (one
//! `String`), walks every bucket, and computes nearest-rank quantiles.
//! Nothing here is ever called from the record path. The format is the
//! Prometheus text format's counter/gauge/summary subset — one
//! `# TYPE` line per family, then `name{label="value"} 123` samples —
//! which is what `ftl-loadgen`'s scrape table and the loopback tests
//! parse. Label values are trusted identifiers (stage names, tenant
//! ids), so no escaping is performed.

use crate::{Histogram, Registry, Stage};
use std::fmt::Write;

/// The quantiles every histogram family exposes.
pub const QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Appends a `# TYPE` header for a family.
pub fn type_line(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one sample line with optional labels.
pub fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    push_name(out, name, labels);
    let _ = writeln!(out, " {value}");
}

/// Appends one floating-point sample line with optional labels.
pub fn sample_f64(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    push_name(out, name, labels);
    let _ = writeln!(out, " {value:.6}");
}

/// Appends a single unlabeled counter family: type line plus sample.
pub fn counter(out: &mut String, name: &str, value: u64) {
    type_line(out, name, "counter");
    sample(out, name, &[], value);
}

/// Appends a single unlabeled gauge family: type line plus sample.
pub fn gauge(out: &mut String, name: &str, value: u64) {
    type_line(out, name, "gauge");
    sample(out, name, &[], value);
}

/// Appends one histogram's summary samples (quantiles, `_count`, `_sum`)
/// under `name` with `labels`. The family's `# TYPE name summary` line is
/// the caller's job (emit it once, then call this per label set).
pub fn histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &Histogram) {
    for q in QUANTILES {
        let mut qbuf = String::new();
        let _ = write!(qbuf, "{q}");
        push_name(out, name, labels);
        push_extra_label(out, labels.is_empty(), "quantile", &qbuf);
        let _ = writeln!(out, " {}", h.percentile(q));
    }
    let mut with_suffix = String::with_capacity(name.len() + 6);
    with_suffix.push_str(name);
    with_suffix.push_str("_count");
    sample(out, &with_suffix, labels, h.count());
    with_suffix.truncate(name.len());
    with_suffix.push_str("_sum");
    sample(out, &with_suffix, labels, h.sum());
}

fn push_name(out: &mut String, name: &str, labels: &[(&str, &str)]) {
    out.push_str(name);
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Re-opens the label braces written by [`push_name`] to append one more
/// label (the quantile), or opens them fresh when there were none.
fn push_extra_label(out: &mut String, had_none: bool, k: &str, v: &str) {
    if had_none {
        let _ = write!(out, "{{{k}=\"{v}\"}}");
    } else if out.ends_with('}') {
        out.pop();
        let _ = write!(out, ",{k}=\"{v}\"}}");
    }
}

impl Registry {
    /// Appends every pipeline-side series to `out`: the per-stage latency
    /// summaries, the engine's cache and sidecar counters (plus the
    /// derived hit ratio), the epoch gauges and swap-latency summary, and
    /// the live-labeling relabel count. `ftl-server` appends its own
    /// `ftl_server_*` families after this to form a complete scrape.
    pub fn render_into(&self, out: &mut String) {
        type_line(out, "ftl_stage_ns", "summary");
        for stage in Stage::ALL {
            histogram(
                out,
                "ftl_stage_ns",
                &[("stage", stage.name())],
                self.stages.get(stage),
            );
        }

        counter(out, "ftl_engine_queries_total", self.engine.queries.get());
        counter(
            out,
            "ftl_engine_eliminations_total",
            self.engine.eliminations.get(),
        );
        counter(
            out,
            "ftl_engine_cache_hits_total",
            self.engine.cache_hits.get(),
        );
        counter(
            out,
            "ftl_engine_sidecar_fallbacks_total",
            self.engine.sidecar_fallbacks.get(),
        );
        type_line(out, "ftl_engine_cache_hit_ratio", "gauge");
        let hits = self.engine.cache_hits.get();
        let lookups = hits + self.engine.eliminations.get();
        let ratio = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        sample_f64(out, "ftl_engine_cache_hit_ratio", &[], ratio);

        gauge(out, "ftl_epoch_published", self.epoch.published.get());
        gauge(out, "ftl_epoch_pinned", self.epoch.pinned.get());
        gauge(out, "ftl_epoch_lag", self.epoch.lag());
        counter(
            out,
            "ftl_epoch_delta_swaps_total",
            self.epoch.delta_swaps.get(),
        );
        counter(
            out,
            "ftl_epoch_full_rebuilds_total",
            self.epoch.full_rebuilds.get(),
        );
        type_line(out, "ftl_epoch_swap_ns", "summary");
        histogram(out, "ftl_epoch_swap_ns", &[], &self.epoch.swap_ns);

        counter(out, "ftl_live_relabels_total", self.live.relabels.get());

        counter(
            out,
            "ftl_chaos_connections_total",
            self.chaos.connections.get(),
        );
        counter(out, "ftl_chaos_resets_total", self.chaos.resets.get());
        counter(
            out,
            "ftl_chaos_blackholes_total",
            self.chaos.blackholes.get(),
        );
        counter(out, "ftl_chaos_garbage_total", self.chaos.garbage.get());
        counter(out, "ftl_chaos_shaped_total", self.chaos.shaped.get());

        counter(out, "ftl_client_retries_total", self.client.retries.get());
        counter(
            out,
            "ftl_client_reconnects_total",
            self.client.reconnects.get(),
        );
        counter(out, "ftl_client_backoffs_total", self.client.backoffs.get());
        counter(
            out,
            "ftl_client_deadline_exceeded_total",
            self.client.deadline_exceeded.get(),
        );
        counter(out, "ftl_client_giveups_total", self.client.giveups.get());
    }

    /// [`render_into`](Registry::render_into) as a fresh string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}
