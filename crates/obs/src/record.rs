//! The recording primitives: atomic counters, gauges, log-bucket
//! histograms, and stage spans.
//!
//! Everything here sits on the serving hot path, so the record side is
//! held to three invariants (enforced twice: clippy lints and
//! `ftl-analyzer` FTL001/FTL002/FTL003):
//!
//! - **zero allocation** — a record is at most two `fetch_add`s; the
//!   histogram storage is a fixed array baked into the static registry.
//! - **lock-free** — relaxed atomics only; readers race recorders and
//!   see a slightly stale but internally monotone view.
//! - **panic-free** — no indexing, no unwraps; an (impossible)
//!   out-of-range bucket index drops the sample instead of panicking.
//!
//! This module is replaced wholesale by [`crate::record_noop`] under the
//! `no-obs` feature; keep the two APIs identical.

use crate::Stage;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A zeroed counter (const: usable in statics).
    pub const fn new() -> Self {
        Counter {
            v: AtomicU64::new(0),
        }
    }

    /// Adds one.
    // ftl-analyzer: hot-path
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    // ftl-analyzer: hot-path
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A last-writer-wins level (epoch numbers, sizes).
#[derive(Debug)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge (const: usable in statics).
    pub const fn new() -> Self {
        Gauge {
            v: AtomicU64::new(0),
        }
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// Sub-bucket resolution: 2^3 = 8 buckets per power of two, bounding the
/// bucketization error of any readout at 12.5 % (values below 16 are
/// exact — their buckets are single integers).
const SUB_BITS: u32 = 3;

/// Bucket count covering all of `u64`: 8 unit buckets for values 0..8,
/// then 8 per octave for octaves 3..=63.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// A fixed-size log-scale histogram of `u64` samples (by convention
/// nanoseconds).
///
/// Recording is one `fetch_add` into a bucket plus one into the running
/// sum; no sample buffer exists, so unlike a capped raw-sample vector
/// every sample of an arbitrarily long run influences the percentiles.
/// Readout follows `ftl_engine::percentile_nearest_rank` semantics over
/// the bucketized distribution: the rank is `ceil(p * n)` clamped to
/// `1..=n`, and the reported value is the inclusive upper bound of the
/// bucket holding that rank.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

/// The bucket holding `v`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = (v >> (msb - SUB_BITS)) as usize & ((1 << SUB_BITS) - 1);
    (octave << SUB_BITS) | sub
}

/// The inclusive upper bound of bucket `i` (saturating at `u64::MAX` for
/// the top octave).
pub(crate) fn bucket_high(i: usize) -> u64 {
    if i < (1 << SUB_BITS) {
        return i as u64;
    }
    let msb = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
    let base = 1u64 << msb;
    let step = base >> SUB_BITS;
    let sub = (i & ((1 << SUB_BITS) - 1)) as u64;
    base.saturating_add(step.saturating_mul(sub + 1))
        .saturating_sub(1)
}

// A const *template* (not shared state): `[ZERO; BUCKETS]` stamps out
// BUCKETS fresh atomics — the standard idiom for const-initializing an
// atomic array.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    /// An empty histogram (const: usable in statics — ~4 KiB of buckets).
    pub const fn new() -> Self {
        Histogram {
            counts: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    // ftl-analyzer: hot-path
    #[inline]
    pub fn record(&self, v: u64) {
        // ftl-analyzer: allow(hot-alloc) bounded array lookup of an atomic bucket — no allocation
        if let Some(c) = self.counts.get(bucket_index(v)) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile over the bucketized distribution; `0` when
    /// empty. Overestimates the true sample by at most 12.5 % (exact for
    /// samples below 16).
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c.load(Ordering::Relaxed));
            if cum >= rank {
                return bucket_high(i);
            }
        }
        bucket_high(BUCKETS - 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// One histogram per [`Stage`].
#[derive(Debug)]
pub struct StageSet {
    hists: [Histogram; Stage::COUNT],
}

/// Fallback target so [`StageSet::get`] never has to panic (the index is
/// a `Stage` discriminant, so the miss is unreachable in practice).
static EMPTY: Histogram = Histogram::new();

impl StageSet {
    /// Empty histograms for every stage (const: usable in statics).
    pub const fn new() -> Self {
        // Template const, same idiom as `ZERO` above.
        #[allow(clippy::declare_interior_mutable_const)]
        const H: Histogram = Histogram::new();
        StageSet {
            hists: [H; Stage::COUNT],
        }
    }

    /// Records a wall-clock delta (nanoseconds) against `stage`.
    // ftl-analyzer: hot-path
    #[inline]
    pub fn record(&self, stage: Stage, ns: u64) {
        // ftl-analyzer: allow(hot-alloc) bounded array lookup of a per-stage histogram — no allocation
        if let Some(h) = self.hists.get(stage.index()) {
            h.record(ns);
        }
    }

    /// The histogram backing `stage`.
    pub fn get(&self, stage: Stage) -> &Histogram {
        self.hists.get(stage.index()).unwrap_or(&EMPTY)
    }
}

impl Default for StageSet {
    fn default() -> Self {
        StageSet::new()
    }
}

/// An RAII stage timer: measures from [`Span::enter`] to drop and records
/// the delta into the stage's histogram.
///
/// ```
/// let stages = ftl_obs::StageSet::new();
/// {
///     let _span = ftl_obs::Span::enter(&stages, ftl_obs::Stage::Elimination);
///     // ... timed work ...
/// }
/// assert_eq!(stages.get(ftl_obs::Stage::Elimination).count(), 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts timing `stage`.
    #[inline]
    pub fn enter(stages: &'a StageSet, stage: Stage) -> Span<'a> {
        Span::over(stages.get(stage))
    }

    /// Starts timing into an explicit histogram.
    #[inline]
    pub fn over(hist: &'a Histogram) -> Span<'a> {
        Span {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}
