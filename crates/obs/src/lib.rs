//! `ftl-obs` — zero-allocation metrics and stage tracing for the serving
//! pipeline.
//!
//! A dependency-free observability layer shared by `ftl-cycle-space`,
//! `ftl-engine`, and `ftl-server` (full catalog and stage model in
//! `docs/observability.md`):
//!
//! - [`Counter`] / [`Gauge`] — relaxed `AtomicU64`s.
//! - [`Histogram`] — fixed-bucket log-scale (8 sub-buckets per power of
//!   two, ≤ 12.5 % bucketization error) with nearest-rank percentile
//!   readout matching `ftl_engine::percentile_nearest_rank` semantics.
//! - [`Stage`] / [`StageSet`] / [`Span`] — RAII wall-clock spans over the
//!   serving pipeline's stages (frame read → window wait → admission →
//!   elimination → answer → response write).
//! - [`Registry`] — the static metric catalog. [`global()`] is the
//!   process-wide instance every pipeline layer records into;
//!   `Registry::new()` builds isolated instances for tests.
//! - [`expo`] — Prometheus-style text exposition (the cold read side,
//!   served over the wire as `MetricsResponse 0x51`).
//!
//! # Disciplines
//!
//! Recording is hot-path-safe by construction: atomics only (no locks —
//! FTL002), zero allocation (FTL001, proven by the engine's
//! counting-allocator test running with instrumentation enabled), no
//! panicking constructs (FTL003). The whole record side compiles to
//! empty inline stubs under the `no-obs` feature (forwarded by the
//! consuming crates), so the uninstrumented bench baseline is
//! recoverable from the same sources.

#![forbid(unsafe_code)]

pub mod expo;
#[cfg(not(feature = "no-obs"))]
mod record;
#[cfg(not(feature = "no-obs"))]
pub use record::{Counter, Gauge, Histogram, Span, StageSet, BUCKETS};
#[cfg(feature = "no-obs")]
mod record_noop;
#[cfg(feature = "no-obs")]
pub use record_noop::{Counter, Gauge, Histogram, Span, StageSet};

/// The pipeline stages whose wall-clock is attributed by [`Span`]s.
///
/// The first and last stages bracket a request's life inside the server;
/// `Elimination` is recorded by the engine itself (per Gaussian
/// elimination, i.e. per fault-set cache miss), the rest by the server's
/// reader and executor threads.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Blocking read of one request frame off the socket (includes the
    /// wait for the client to send it).
    FrameRead,
    /// Admission (`Batcher::submit`): the window-lock hold that charges
    /// the budget and joins the window.
    Admission,
    /// From successful admission to the executor taking the request's
    /// window (the accumulation-window wait).
    WindowWait,
    /// One Gaussian elimination of a fault set (cache misses only; hits
    /// skip this stage entirely).
    Elimination,
    /// Per-query answer time: an executed window's engine time divided by
    /// its query count (recorded once per window).
    Answer,
    /// Writing one response frame through the connection's writer slot.
    ResponseWrite,
}

impl Stage {
    /// How many stages exist.
    pub const COUNT: usize = 6;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::FrameRead,
        Stage::Admission,
        Stage::WindowWait,
        Stage::Elimination,
        Stage::Answer,
        Stage::ResponseWrite,
    ];

    /// The stable label value used in the exposition
    /// (`ftl_stage_ns{stage="..."}`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::FrameRead => "frame_read",
            Stage::Admission => "admission",
            Stage::WindowWait => "window_wait",
            Stage::Elimination => "elimination",
            Stage::Answer => "answer",
            Stage::ResponseWrite => "response_write",
        }
    }

    /// Dense index into a [`StageSet`].
    #[cfg_attr(feature = "no-obs", allow(dead_code))]
    pub(crate) fn index(self) -> usize {
        match self {
            Stage::FrameRead => 0,
            Stage::Admission => 1,
            Stage::WindowWait => 2,
            Stage::Elimination => 3,
            Stage::Answer => 4,
            Stage::ResponseWrite => 5,
        }
    }
}

/// Engine-side counters: cache effectiveness and sidecar coverage.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Queries answered (all batches, all engines in the process).
    pub queries: Counter,
    /// Fault-set Gaussian eliminations performed (= cache misses).
    pub eliminations: Counter,
    /// Fault sets served from the elimination cache.
    pub cache_hits: Counter,
    /// Ancestry lookups that missed the sidecar arrays and fell back to
    /// decoding the wire record.
    pub sidecar_fallbacks: Counter,
}

impl EngineMetrics {
    /// Zeroed counters (const: usable in statics).
    pub const fn new() -> Self {
        EngineMetrics {
            queries: Counter::new(),
            eliminations: Counter::new(),
            cache_hits: Counter::new(),
            sidecar_fallbacks: Counter::new(),
        }
    }

    /// Folds one executed batch's stats in (three relaxed adds).
    #[inline]
    pub fn record_batch(&self, queries: u64, eliminations: u64, cache_hits: u64) {
        self.queries.add(queries);
        self.eliminations.add(eliminations);
        self.cache_hits.add(cache_hits);
    }
}

/// Epoch-store metrics: publication progress, engine lag, and swap cost.
#[derive(Debug, Default)]
pub struct EpochMetrics {
    /// Latest epoch number published by the `EpochStore`.
    pub published: Gauge,
    /// Latest epoch number an engine pinned for a batch.
    pub pinned: Gauge,
    /// Wall-clock nanoseconds per `LiveStore` swap (mutation batch →
    /// published epoch), whichever path built it.
    pub swap_ns: Histogram,
    /// Swaps that took the incremental delta-freeze path.
    pub delta_swaps: Counter,
    /// Swaps that fell back to a full label rebuild.
    pub full_rebuilds: Counter,
}

impl EpochMetrics {
    /// Zeroed metrics (const: usable in statics).
    pub const fn new() -> Self {
        EpochMetrics {
            published: Gauge::new(),
            pinned: Gauge::new(),
            swap_ns: Histogram::new(),
            delta_swaps: Counter::new(),
            full_rebuilds: Counter::new(),
        }
    }

    /// How far the most recently pinned engine trails publication
    /// (0 until both sides have reported).
    pub fn lag(&self) -> u64 {
        let pinned = self.pinned.get();
        if pinned == 0 {
            return 0;
        }
        self.published.get().saturating_sub(pinned)
    }
}

/// Live-labeling (dynamic cycle-space) metrics.
#[derive(Debug, Default)]
pub struct LiveMetrics {
    /// Full relabel-from-scratch fallbacks (seed-pool exhaustion or
    /// non-incremental mutations) across every `LiveCycleSpace`.
    pub relabels: Counter,
}

impl LiveMetrics {
    /// Zeroed counters (const: usable in statics).
    pub const fn new() -> Self {
        LiveMetrics {
            relabels: Counter::new(),
        }
    }
}

/// Chaos-proxy fault counters (`ftl-chaos`): events *fired*, not merely
/// planned, so a scrape accounts for exactly the faults a run injected.
#[derive(Debug, Default)]
pub struct ChaosMetrics {
    /// Connections accepted by any chaos proxy in the process.
    pub connections: Counter,
    /// Connection resets fired (immediate + mid-stream).
    pub resets: Counter,
    /// Black holes engaged (accepted, never forwarded).
    pub blackholes: Counter,
    /// Garbage-byte splices fired.
    pub garbage: Counter,
    /// Connections run under split/throttle shaping.
    pub shaped: Counter,
}

impl ChaosMetrics {
    /// Zeroed counters (const: usable in statics).
    pub const fn new() -> Self {
        ChaosMetrics {
            connections: Counter::new(),
            resets: Counter::new(),
            blackholes: Counter::new(),
            garbage: Counter::new(),
            shaped: Counter::new(),
        }
    }
}

/// Resilient-client counters (`ftl_server::client`): the retry loop's
/// externally visible decisions.
#[derive(Debug, Default)]
pub struct ClientMetrics {
    /// Request attempts retried after an I/O error, timeout, or
    /// retryable status.
    pub retries: Counter,
    /// Reconnects performed (a retry that had to re-dial).
    pub reconnects: Counter,
    /// Backoff sleeps taken before a retry.
    pub backoffs: Counter,
    /// `DeadlineExceeded` responses received.
    pub deadline_exceeded: Counter,
    /// Requests abandoned after exhausting every attempt.
    pub giveups: Counter,
}

impl ClientMetrics {
    /// Zeroed counters (const: usable in statics).
    pub const fn new() -> Self {
        ClientMetrics {
            retries: Counter::new(),
            reconnects: Counter::new(),
            backoffs: Counter::new(),
            deadline_exceeded: Counter::new(),
            giveups: Counter::new(),
        }
    }
}

/// The metric catalog: per-stage latency histograms plus the engine,
/// epoch, and live-labeling families.
///
/// [`global()`] returns the static process-wide registry that the
/// instrumented pipeline records into; isolated instances
/// (`Registry::new()`) exist so tests can assert exact sums without
/// cross-test interference. Server-side counters (`ftl_server_*`) are
/// per-server-instance and live in `ftl_server::ServerStats`, built from
/// the same primitives; its scrape renders them after
/// [`Registry::render_into`].
#[derive(Debug, Default)]
pub struct Registry {
    /// Per-stage wall-clock histograms.
    pub stages: StageSet,
    /// Engine cache/sidecar counters.
    pub engine: EngineMetrics,
    /// Epoch publication and swap metrics.
    pub epoch: EpochMetrics,
    /// Live-labeling counters.
    pub live: LiveMetrics,
    /// Chaos-proxy fault counters.
    pub chaos: ChaosMetrics,
    /// Resilient-client retry counters.
    pub client: ClientMetrics,
}

impl Registry {
    /// A zeroed registry (const: usable in statics).
    pub const fn new() -> Self {
        Registry {
            stages: StageSet::new(),
            engine: EngineMetrics::new(),
            epoch: EpochMetrics::new(),
            live: LiveMetrics::new(),
            chaos: ChaosMetrics::new(),
            client: ClientMetrics::new(),
        }
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-wide registry every instrumented pipeline layer records
/// into.
// ftl-analyzer: hot-path
#[inline]
pub fn global() -> &'static Registry {
    &GLOBAL
}

#[cfg(all(test, not(feature = "no-obs")))]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_read_back() {
        let r = Registry::new();
        r.engine.record_batch(10, 2, 8);
        r.engine.record_batch(5, 0, 5);
        r.engine.sidecar_fallbacks.inc();
        assert_eq!(r.engine.queries.get(), 15);
        assert_eq!(r.engine.eliminations.get(), 2);
        assert_eq!(r.engine.cache_hits.get(), 13);
        assert_eq!(r.engine.sidecar_fallbacks.get(), 1);
        r.epoch.published.set(7);
        assert_eq!(r.epoch.published.get(), 7);
    }

    #[test]
    fn epoch_lag_needs_both_sides() {
        let r = Registry::new();
        r.epoch.published.set(9);
        assert_eq!(r.epoch.lag(), 0, "no engine pinned yet: lag undefined");
        r.epoch.pinned.set(6);
        assert_eq!(r.epoch.lag(), 3);
        r.epoch.pinned.set(12);
        assert_eq!(r.epoch.lag(), 0, "pinned ahead of a stale read saturates");
    }

    #[test]
    fn histogram_percentiles_match_nearest_rank_on_a_known_distribution() {
        // 1..=1000 uniformly: nearest-rank p50 is the 500th sample (500),
        // p99 the 990th (990). The log buckets report the bucket's upper
        // bound, at most 12.5% above.
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!((500..=563).contains(&p50), "p50 = {p50}");
        assert!((990..=1113).contains(&p99), "p99 = {p99}");
        // Extremes clamp like percentile_nearest_rank: rank 1 and rank n.
        assert_eq!(h.percentile(0.0), 1, "small values are bucketed exactly");
        assert!(h.percentile(1.0) >= 1000);
    }

    #[test]
    fn histogram_is_exact_below_sixteen() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 9, 15] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.percentile(1.0), 15);
        assert_eq!(Histogram::new().percentile(0.5), 0, "empty reads 0");
    }

    #[test]
    fn histogram_buckets_are_monotone_and_total() {
        // Every index round-trips: a value lands in a bucket whose bounds
        // contain it, and bucket upper bounds are non-decreasing.
        let mut last_high = 0u64;
        for i in 0..BUCKETS {
            let high = record::bucket_high(i);
            assert!(high >= last_high, "bucket {i} not monotone");
            last_high = high;
            assert_eq!(record::bucket_index(high), i, "upper bound of {i}");
            if i + 1 < BUCKETS {
                assert_eq!(record::bucket_index(high + 1), i + 1);
            }
        }
        assert_eq!(record::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn spans_record_into_their_stage() {
        let stages = StageSet::new();
        {
            let _outer = Span::enter(&stages, Stage::FrameRead);
            let _inner = Span::enter(&stages, Stage::Elimination);
        }
        assert_eq!(stages.get(Stage::FrameRead).count(), 1);
        assert_eq!(stages.get(Stage::Elimination).count(), 1);
        assert_eq!(stages.get(Stage::Answer).count(), 0);
    }

    #[test]
    fn hammered_registry_sums_are_exact() {
        // The concurrency contract: N threads × M records lose nothing.
        let r = std::sync::Arc::new(Registry::new());
        let threads = 8u64;
        let per_thread = 50_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        r.engine.queries.inc();
                        r.stages.record(Stage::Answer, t * per_thread + i);
                        r.live.relabels.add(2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = threads * per_thread;
        assert_eq!(r.engine.queries.get(), total);
        assert_eq!(r.live.relabels.get(), 2 * total);
        let h = r.stages.get(Stage::Answer);
        assert_eq!(h.count(), total);
        // Sum of 0..threads*per_thread, exactly — no sample dropped.
        assert_eq!(h.sum(), total * (total - 1) / 2);
    }

    #[test]
    fn exposition_renders_every_family_and_parses() {
        let r = Registry::new();
        r.engine.record_batch(4, 1, 3);
        r.epoch.published.set(2);
        r.epoch.pinned.set(2);
        r.epoch.swap_ns.record(1_000);
        r.epoch.delta_swaps.inc();
        r.stages.record(Stage::WindowWait, 500);
        let text = r.render();
        for series in [
            "ftl_stage_ns{stage=\"frame_read\",quantile=\"0.5\"}",
            "ftl_stage_ns_count{stage=\"window_wait\"} 1",
            "ftl_engine_queries_total 4",
            "ftl_engine_cache_hits_total 3",
            "ftl_engine_cache_hit_ratio 0.750000",
            "ftl_engine_sidecar_fallbacks_total 0",
            "ftl_epoch_published 2",
            "ftl_epoch_lag 0",
            "ftl_epoch_swap_ns_count 1",
            "ftl_epoch_delta_swaps_total 1",
            "ftl_live_relabels_total 0",
        ] {
            assert!(text.contains(series), "missing `{series}` in:\n{text}");
        }
        // Every non-comment line is `name_or_labels value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable line: {line}");
            assert!(parts.next().is_some_and(|n| n.starts_with("ftl_")));
        }
    }
}
