//! Property tests: wire round-trip (`encode → decode ≡ original`) for the
//! cycle-space label types, over arbitrary field values.

use ftl_cycle_space::{CycleSpaceEdgeLabel, CycleSpaceVertexLabel};
use ftl_gf2::BitVec;
use ftl_labels::{AncestryLabel, WireLabel};
use proptest::prelude::*;

proptest! {
    #[test]
    fn vertex_label_roundtrip(pre in any::<u32>(), post in any::<u32>()) {
        let l = CycleSpaceVertexLabel {
            anc: AncestryLabel { pre, post },
        };
        prop_assert_eq!(CycleSpaceVertexLabel::from_wire(&l.to_wire()).unwrap(), l);
    }

    #[test]
    fn edge_label_roundtrip(
        phi in proptest::collection::vec(any::<bool>(), 0..150),
        anc in proptest::collection::vec(any::<u32>(), 4..5),
        is_tree in any::<bool>(),
    ) {
        let l = CycleSpaceEdgeLabel {
            phi: BitVec::from_bits(&phi),
            anc_u: AncestryLabel { pre: anc[0], post: anc[1] },
            anc_v: AncestryLabel { pre: anc[2], post: anc[3] },
            is_tree,
        };
        let back = CycleSpaceEdgeLabel::from_wire(&l.to_wire()).unwrap();
        prop_assert_eq!(back, l);
    }

    /// Single-bit header corruption is always rejected.
    #[test]
    fn corrupted_header_rejected(
        phi in proptest::collection::vec(any::<bool>(), 1..64),
        bit in 0usize..64,
    ) {
        let l = CycleSpaceEdgeLabel {
            phi: BitVec::from_bits(&phi),
            anc_u: AncestryLabel { pre: 1, post: 8 },
            anc_v: AncestryLabel { pre: 2, post: 3 },
            is_tree: true,
        };
        let mut bytes = l.to_wire();
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(CycleSpaceEdgeLabel::from_wire(&bytes).is_err());
    }

    /// Truncating either label kind anywhere makes decoding fail.
    #[test]
    fn truncation_always_rejected(
        phi in proptest::collection::vec(any::<bool>(), 0..150),
        cut in 0usize..64,
    ) {
        let v = CycleSpaceVertexLabel { anc: AncestryLabel { pre: 5, post: 6 } };
        let vb = v.to_wire();
        prop_assert!(CycleSpaceVertexLabel::from_wire(&vb[..cut.min(vb.len() - 1)]).is_err());
        let e = CycleSpaceEdgeLabel {
            phi: BitVec::from_bits(&phi),
            anc_u: AncestryLabel { pre: 1, post: 8 },
            anc_v: AncestryLabel { pre: 2, post: 3 },
            is_tree: false,
        };
        let eb = e.to_wire();
        prop_assert!(CycleSpaceEdgeLabel::from_wire(&eb[..cut.min(eb.len() - 1)]).is_err());
    }

    /// An inflated declared payload bit-length is rejected with an error,
    /// never a panic or out-of-bounds read.
    #[test]
    fn oversized_declared_bits_rejected(
        phi in proptest::collection::vec(any::<bool>(), 0..150),
        extra in 1u32..100_000,
    ) {
        let l = CycleSpaceEdgeLabel {
            phi: BitVec::from_bits(&phi),
            anc_u: AncestryLabel { pre: 1, post: 8 },
            anc_v: AncestryLabel { pre: 2, post: 3 },
            is_tree: true,
        };
        let mut bytes = l.to_wire();
        let declared = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        bytes[4..8].copy_from_slice(&declared.saturating_add(extra).to_le_bytes());
        prop_assert!(CycleSpaceEdgeLabel::from_wire(&bytes).is_err());
    }

    /// Arbitrary multi-byte corruption never panics on either label kind.
    #[test]
    fn random_corruption_never_panics(
        phi in proptest::collection::vec(any::<bool>(), 0..150),
        hits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..12),
    ) {
        let e = CycleSpaceEdgeLabel {
            phi: BitVec::from_bits(&phi),
            anc_u: AncestryLabel { pre: 4, post: 9 },
            anc_v: AncestryLabel { pre: 7, post: 2 },
            is_tree: false,
        };
        let mut bytes = e.to_wire();
        for &(pos, val) in &hits {
            let i = pos as usize % bytes.len();
            bytes[i] = val;
        }
        let _ = CycleSpaceEdgeLabel::from_wire(&bytes);
        let mut vb = CycleSpaceVertexLabel { anc: AncestryLabel { pre: 5, post: 6 } }.to_wire();
        for &(pos, val) in &hits {
            let i = pos as usize % vb.len();
            vb[i] = val;
        }
        let _ = CycleSpaceVertexLabel::from_wire(&vb);
    }
}
