//! Property tests: wire round-trip (`encode → decode ≡ original`) for the
//! cycle-space label types, over arbitrary field values.

use ftl_cycle_space::{CycleSpaceEdgeLabel, CycleSpaceVertexLabel};
use ftl_gf2::BitVec;
use ftl_labels::{AncestryLabel, WireLabel};
use proptest::prelude::*;

proptest! {
    #[test]
    fn vertex_label_roundtrip(pre in any::<u32>(), post in any::<u32>()) {
        let l = CycleSpaceVertexLabel {
            anc: AncestryLabel { pre, post },
        };
        prop_assert_eq!(CycleSpaceVertexLabel::from_wire(&l.to_wire()).unwrap(), l);
    }

    #[test]
    fn edge_label_roundtrip(
        phi in proptest::collection::vec(any::<bool>(), 0..150),
        anc in proptest::collection::vec(any::<u32>(), 4..5),
        is_tree in any::<bool>(),
    ) {
        let l = CycleSpaceEdgeLabel {
            phi: BitVec::from_bits(&phi),
            anc_u: AncestryLabel { pre: anc[0], post: anc[1] },
            anc_v: AncestryLabel { pre: anc[2], post: anc[3] },
            is_tree,
        };
        let back = CycleSpaceEdgeLabel::from_wire(&l.to_wire()).unwrap();
        prop_assert_eq!(back, l);
    }

    /// Single-bit header corruption is always rejected.
    #[test]
    fn corrupted_header_rejected(
        phi in proptest::collection::vec(any::<bool>(), 1..64),
        bit in 0usize..64,
    ) {
        let l = CycleSpaceEdgeLabel {
            phi: BitVec::from_bits(&phi),
            anc_u: AncestryLabel { pre: 1, post: 8 },
            anc_v: AncestryLabel { pre: 2, post: 3 },
            is_tree: true,
        };
        let mut bytes = l.to_wire();
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(CycleSpaceEdgeLabel::from_wire(&bytes).is_err());
    }
}
