//! Property-based tests: the cycle-space FT connectivity scheme against
//! ground truth on random graphs and fault sets.

use ftl_cycle_space::{decode, decode_brute_force, decode_with_certificate, CycleSpaceScheme};
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_graph::{EdgeId, Graph, GraphBuilder, VertexId};
use ftl_seeded::Seed;
use proptest::prelude::*;

/// Connected graph + fault subset + query pair.
fn scenario() -> impl Strategy<Value = (Graph, Vec<EdgeId>, VertexId, VertexId, u64)> {
    (
        2usize..24,
        proptest::collection::vec((0usize..24, 0usize..24), 0..30),
        proptest::collection::vec(0usize..500, 0..6),
        0usize..24,
        0usize..24,
        any::<u64>(),
    )
        .prop_map(|(n, extra, fpicks, s, t, seed)| {
            let mut b = GraphBuilder::new(n);
            for i in 1..n {
                b.add_unit_edge(i / 2, i);
            }
            for (u, v) in extra {
                if u % n != v % n {
                    b.add_unit_edge(u % n, v % n);
                }
            }
            let g = b.build();
            let mut faults: Vec<EdgeId> = Vec::new();
            for p in fpicks {
                let e = EdgeId::new(p % g.num_edges());
                if !faults.contains(&e) {
                    faults.push(e);
                }
            }
            (g, faults, VertexId::new(s % n), VertexId::new(t % n), seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fast decode == ground truth == brute-force decode.
    #[test]
    fn decode_matches_ground_truth((g, faults, s, t, seed) in scenario()) {
        let scheme = CycleSpaceScheme::label_with_bits(&g, faults.len() + 48, Seed::new(seed)).unwrap();
        let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let mask = forbidden_mask(&g, &faults);
        let truth = connected_avoiding(&g, s, t, &mask);
        let sl = scheme.vertex_label(s);
        let tl = scheme.vertex_label(t);
        prop_assert_eq!(decode(&sl, &tl, &fl), truth);
        prop_assert_eq!(decode_brute_force(&sl, &tl, &fl), truth);
    }

    /// When disconnected, the certificate is a genuine separating cut.
    #[test]
    fn certificate_separates((g, faults, s, t, seed) in scenario()) {
        let scheme = CycleSpaceScheme::label_with_bits(&g, faults.len() + 48, Seed::new(seed)).unwrap();
        let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let sl = scheme.vertex_label(s);
        let tl = scheme.vertex_label(t);
        if let Some(cert) = decode_with_certificate(&sl, &tl, &fl) {
            // The certificate subset alone must already disconnect s from t.
            let sub: Vec<EdgeId> = cert.iter().map(|&i| faults[i]).collect();
            let mask = forbidden_mask(&g, &sub);
            prop_assert!(!connected_avoiding(&g, s, t, &mask),
                "certificate {:?} does not separate", sub);
        }
    }

    /// Monotonicity: adding faults can only disconnect, never reconnect.
    #[test]
    fn fault_monotonicity((g, faults, s, t, seed) in scenario()) {
        let scheme = CycleSpaceScheme::label_with_bits(&g, faults.len() + 48, Seed::new(seed)).unwrap();
        let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let sl = scheme.vertex_label(s);
        let tl = scheme.vertex_label(t);
        if !fl.is_empty() {
            let fewer = &fl[..fl.len() - 1];
            if !decode(&sl, &tl, fewer) {
                prop_assert!(!decode(&sl, &tl, &fl));
            }
        }
    }

    /// Labels are an injective-enough addressing: same vertex label => same
    /// vertex (distinct vertices get distinct ancestry labels).
    #[test]
    fn vertex_labels_distinct((g, _faults, _s, _t, seed) in scenario()) {
        let scheme = CycleSpaceScheme::label_with_bits(&g, 48, Seed::new(seed)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for v in g.vertices() {
            prop_assert!(seen.insert(scheme.vertex_label(v).anc));
        }
    }
}
