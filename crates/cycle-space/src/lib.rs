//! FT connectivity labels via **cycle space sampling** (Section 3.1,
//! Theorem 3.6; technique of Pritchard–Thurimella \[PT11\]).
//!
//! The scheme assigns each edge a `b = f + c·log n`-bit string `φ(e)` such
//! that for any edge subset `F′`, `⊕_{e∈F′} φ(e) = 0` iff `F′` is an induced
//! edge cut (with failure probability `2^{-b}` otherwise) — Lemma 1.7. An
//! edge label additionally carries the ancestry labels of its endpoints and
//! a tree-membership bit; a vertex label is just its ancestry label.
//!
//! Decoding (given the labels of `s`, `t` and `F` and *nothing else*) checks
//! whether some `F′ ⊆ F` is an induced edge cut separating `s` from `t`
//! (Corollary 3.4), either by enumerating subsets (Section 3.1.2) or by
//! solving two GF(2) linear systems (Section 3.1.3 / Lemma 3.5).
//!
//! The scheme assumes a **connected** input graph; `ftl-core` wraps it with
//! per-component application for general graphs, as prescribed in the paper.
//!
//! # Features
//!
//! * `parallel` (default) — build per-vertex/per-edge label material on all
//!   cores via [`ftl_par`]; disable (`--no-default-features`) for a strictly
//!   single-threaded build. Results are identical either way.
//!
//! # Example
//!
//! ```
//! use ftl_cycle_space::CycleSpaceScheme;
//! use ftl_graph::{generators, EdgeId, VertexId};
//! use ftl_seeded::Seed;
//!
//! let g = generators::cycle(6);
//! let scheme = CycleSpaceScheme::label(&g, 2, Seed::new(1)).unwrap();
//! let s = scheme.vertex_label(VertexId::new(0));
//! let t = scheme.vertex_label(VertexId::new(3));
//! // Two faults cut the cycle between 0 and 3:
//! let f = [scheme.edge_label(EdgeId::new(1)), scheme.edge_label(EdgeId::new(4))];
//! assert!(!ftl_cycle_space::decode(&s, &t, &f));
//! // One fault leaves them connected:
//! let f = [scheme.edge_label(EdgeId::new(1))];
//! assert!(ftl_cycle_space::decode(&s, &t, &f));
//! ```
//!
//! See `README.md` at the repo root for where this scheme sits in the
//! full pipeline (labeling → freeze → engine → server), and
//! `docs/static-analysis.md` for the determinism rules (FTL004) this
//! crate is held to.

#![forbid(unsafe_code)]

pub mod circulation;
pub mod decode;
pub mod labeling;
pub mod live;
pub mod wire;

pub use decode::{decode, decode_brute_force, decode_with_certificate, CycleSpaceDecoder};
pub use labeling::{CycleSpaceEdgeLabel, CycleSpaceScheme, CycleSpaceVertexLabel};
pub use live::{LiveCycleSpace, LiveDelta, LiveError};
