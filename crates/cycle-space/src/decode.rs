//! Decoding algorithms for the cycle-space scheme (Sections 3.1.2–3.1.3).

use crate::labeling::{CycleSpaceEdgeLabel, CycleSpaceVertexLabel};
use ftl_gf2::{Basis, BitVec, DecodeScratch};

/// A reusable decoder for the cycle-space scheme: owns the elimination
/// [`Basis`], the augmented-column buffers and the reduction scratch, so a
/// serving loop that decodes many `⟨s, t, F⟩` queries allocates nothing per
/// query once the buffers have grown to the workload's shape (`b + 2` bits,
/// `f` columns).
///
/// The one-shot free functions [`decode`] / [`decode_with_certificate`]
/// construct a fresh decoder per call; long-lived callers (the `ftl-engine`
/// batch path, benchmark loops) should hold one `CycleSpaceDecoder` instead.
#[derive(Debug, Default)]
pub struct CycleSpaceDecoder {
    basis: Basis,
    scratch: DecodeScratch,
    cols: Vec<BitVec>,
    w: BitVec,
}

impl CycleSpaceDecoder {
    /// A decoder with empty scratch buffers (grown on first use).
    pub fn new() -> Self {
        CycleSpaceDecoder::default()
    }

    /// Builds the augmented vector `φ′(e)` of Section 3.1.3 into `out`:
    /// two prefix bits recording whether `e` lies on the root–`s` (but not
    /// root–`t`) path, respectively root–`t` (but not root–`s`), followed
    /// by `φ(e)`.
    fn augmented_vector_into(
        e: &CycleSpaceEdgeLabel,
        s: &CycleSpaceVertexLabel,
        t: &CycleSpaceVertexLabel,
        out: &mut BitVec,
    ) {
        let on_s = e.on_root_path_of(&s.anc);
        let on_t = e.on_root_path_of(&t.anc);
        out.reset_zeroed(e.phi.len() + 2);
        if on_s && !on_t {
            out.set(0, true); // "10" case
        } else if on_t && !on_s {
            out.set(1, true); // "01" case
        }
        out.or_shifted(&e.phi, 2);
    }

    /// Runs the elimination and reports whether a separating combination
    /// exists, leaving it in the scratch `combo` — the allocation-free core
    /// shared by [`CycleSpaceDecoder::decode`] (which never materializes
    /// the certificate) and
    /// [`CycleSpaceDecoder::decode_with_certificate`] (which collects it
    /// only on separation).
    fn find_separating_combo(
        &mut self,
        s: &CycleSpaceVertexLabel,
        t: &CycleSpaceVertexLabel,
        faults: &[CycleSpaceEdgeLabel],
    ) -> bool {
        if s.anc == t.anc {
            return false; // s == t: always connected
        }
        if faults.is_empty() {
            return false; // the base graph is connected
        }
        let b = faults[0].phi.len();
        if self.cols.len() < faults.len() {
            self.cols.resize(faults.len(), BitVec::default());
        }
        self.basis.reset(b + 2, faults.len());
        for (i, e) in faults.iter().enumerate() {
            Self::augmented_vector_into(e, s, t, &mut self.cols[i]);
            self.basis.insert_with(&self.cols[i], &mut self.scratch);
        }
        for wbit in [0usize, 1] {
            self.w.reset_zeroed(b + 2);
            self.w.set(wbit, true);
            if self.basis.express_with(&self.w, &mut self.scratch) {
                return true;
            }
        }
        false
    }

    /// [`decode_with_certificate`], reusing this decoder's buffers. Only the
    /// returned certificate allocates, and only on separation.
    pub fn decode_with_certificate(
        &mut self,
        s: &CycleSpaceVertexLabel,
        t: &CycleSpaceVertexLabel,
        faults: &[CycleSpaceEdgeLabel],
    ) -> Option<Vec<usize>> {
        self.find_separating_combo(s, t, faults)
            .then(|| self.scratch.combo().ones().collect())
    }

    /// [`decode`], reusing this decoder's buffers; fully allocation-free
    /// after warm-up (unlike the certificate form, separated pairs allocate
    /// nothing either).
    pub fn decode(
        &mut self,
        s: &CycleSpaceVertexLabel,
        t: &CycleSpaceVertexLabel,
        faults: &[CycleSpaceEdgeLabel],
    ) -> bool {
        !self.find_separating_combo(s, t, faults)
    }
}

/// Fast decoder (Lemma 3.5): `s` and `t` are disconnected by `F` iff one of
/// the GF(2) systems `A·x = w₁ / A·x = w₂` is solvable, where the columns of
/// `A` are the augmented vectors `φ′(e)`.
///
/// The columns are eliminated **once** into an incremental [`ftl_gf2::Basis`]
/// (batched, word-parallel) and both targets are answered from it — halving
/// the elimination work of the naive solve-per-target formulation.
///
/// Returns `Some(subset)` — the indices into `faults` of a disconnecting
/// induced edge cut `F′` — when `s` and `t` are separated, `None` when they
/// remain connected (w.h.p.).
pub fn decode_with_certificate(
    s: &CycleSpaceVertexLabel,
    t: &CycleSpaceVertexLabel,
    faults: &[CycleSpaceEdgeLabel],
) -> Option<Vec<usize>> {
    CycleSpaceDecoder::new().decode_with_certificate(s, t, faults)
}

/// Fast decoder, boolean form: `true` iff `s` and `t` are **connected** in
/// `G \ F` (w.h.p.).
pub fn decode(
    s: &CycleSpaceVertexLabel,
    t: &CycleSpaceVertexLabel,
    faults: &[CycleSpaceEdgeLabel],
) -> bool {
    decode_with_certificate(s, t, faults).is_none()
}

/// The exponential-time decoder of Section 3.1.2: enumerate every
/// `F′ ⊆ F`, test the induced-cut condition via the XOR of `φ`, and the
/// side condition via the parities of `n′_s(F′), n′_t(F′)`.
///
/// Kept as the differential-testing oracle for [`decode`]; limited to
/// `|F| <= 20`.
///
/// # Panics
///
/// Panics if more than 20 faults are supplied.
pub fn decode_brute_force(
    s: &CycleSpaceVertexLabel,
    t: &CycleSpaceVertexLabel,
    faults: &[CycleSpaceEdgeLabel],
) -> bool {
    assert!(faults.len() <= 20, "too many faults for brute force");
    if s.anc == t.anc {
        return true;
    }
    let f = faults.len();
    let b = faults.first().map(|e| e.phi.len()).unwrap_or(0);
    for mask in 1u64..(1u64 << f) {
        let mut xor = BitVec::zeros(b);
        let mut ns = 0usize; // edges on root-s path, not root-t
        let mut nt = 0usize; // edges on root-t path, not root-s
        for (i, e) in faults.iter().enumerate() {
            if (mask >> i) & 1 == 0 {
                continue;
            }
            xor.xor_assign(&e.phi);
            let on_s = e.on_root_path_of(&s.anc);
            let on_t = e.on_root_path_of(&t.anc);
            if on_s && !on_t {
                ns += 1;
            }
            if on_t && !on_s {
                nt += 1;
            }
        }
        if xor.is_zero() && (ns % 2) != (nt % 2) {
            return false; // found an induced cut separating s from t
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::CycleSpaceScheme;
    use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
    use ftl_graph::{generators, EdgeId, Graph, VertexId};
    use ftl_seeded::Seed;

    fn check_all_pairs(g: &Graph, faults: &[EdgeId], seed: u64) {
        let scheme = CycleSpaceScheme::label(g, faults.len(), Seed::new(seed)).unwrap();
        let flabels: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let mask = forbidden_mask(g, faults);
        for a in 0..g.num_vertices() {
            for b in 0..g.num_vertices() {
                let (s, t) = (VertexId::new(a), VertexId::new(b));
                let truth = connected_avoiding(g, s, t, &mask);
                let fast = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &flabels);
                assert_eq!(fast, truth, "pair ({a},{b}), faults {faults:?}");
                let slow =
                    decode_brute_force(&scheme.vertex_label(s), &scheme.vertex_label(t), &flabels);
                assert_eq!(slow, truth, "brute force pair ({a},{b})");
            }
        }
    }

    #[test]
    fn path_graph_all_single_faults() {
        let g = generators::path(6);
        for e in 0..g.num_edges() {
            check_all_pairs(&g, &[EdgeId::new(e)], 100 + e as u64);
        }
    }

    #[test]
    fn cycle_graph_fault_pairs() {
        let g = generators::cycle(6);
        for e1 in 0..6 {
            for e2 in (e1 + 1)..6 {
                check_all_pairs(&g, &[EdgeId::new(e1), EdgeId::new(e2)], 7);
            }
        }
    }

    #[test]
    fn grid_graph_random_fault_sets() {
        let g = generators::grid(3, 4);
        let mut state = 0xABCDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let f = 1 + (next() as usize) % 5;
            let mut faults = Vec::new();
            while faults.len() < f {
                let e = EdgeId::new((next() as usize) % g.num_edges());
                if !faults.contains(&e) {
                    faults.push(e);
                }
            }
            check_all_pairs(&g, &faults, 1000 + trial);
        }
    }

    #[test]
    fn star_center_isolation() {
        let g = generators::star(5);
        // Failing all edges of leaf 1 disconnects it from everyone.
        check_all_pairs(&g, &[EdgeId::new(0)], 3);
        // Failing every star edge isolates everything.
        let all: Vec<EdgeId> = (0..4).map(EdgeId::new).collect();
        check_all_pairs(&g, &all, 4);
    }

    #[test]
    fn certificate_is_a_real_separating_cut() {
        let g = generators::cycle(8);
        let scheme = CycleSpaceScheme::label(&g, 4, Seed::new(21)).unwrap();
        let faults = [EdgeId::new(0), EdgeId::new(3), EdgeId::new(5)];
        let flabels: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let s = scheme.vertex_label(VertexId::new(1));
        let t = scheme.vertex_label(VertexId::new(6));
        // 0-1-2-3 side vs 4..7: faults {0,3} separate 1..3 from the rest?
        // Cycle edges: i connects i and i+1 mod 8. Removing e0 (0-1) and e3
        // (3-4) splits {1,2,3} from {4,...,0}. s=1, t=6 are separated.
        let cert = decode_with_certificate(&s, &t, &flabels).expect("separated");
        // The certificate must consist of e0 and e3 (indices 0 and 1 in F).
        assert_eq!(cert, vec![0, 1]);
    }

    #[test]
    fn reused_decoder_matches_one_shot_decode() {
        // One CycleSpaceDecoder across many queries of different shapes
        // (varying f and b) must agree with the fresh-per-call functions.
        let g = generators::grid(3, 4);
        let mut state = 0x77AAu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut decoder = CycleSpaceDecoder::new();
        for trial in 0..20 {
            let scheme =
                CycleSpaceScheme::label(&g, 1 + trial % 7, Seed::new(trial as u64)).unwrap();
            let f = 1 + (next() as usize) % 6;
            let mut faults = Vec::new();
            while faults.len() < f {
                let e = EdgeId::new((next() as usize) % g.num_edges());
                if !faults.contains(&e) {
                    faults.push(e);
                }
            }
            let flabels: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
            for _ in 0..6 {
                let s = scheme.vertex_label(VertexId::new((next() as usize) % g.num_vertices()));
                let t = scheme.vertex_label(VertexId::new((next() as usize) % g.num_vertices()));
                assert_eq!(
                    decoder.decode_with_certificate(&s, &t, &flabels),
                    decode_with_certificate(&s, &t, &flabels),
                    "trial {trial}"
                );
            }
        }
    }

    #[test]
    fn no_faults_always_connected() {
        let g = generators::grid(2, 3);
        let scheme = CycleSpaceScheme::label(&g, 0, Seed::new(2)).unwrap();
        let s = scheme.vertex_label(VertexId::new(0));
        let t = scheme.vertex_label(VertexId::new(5));
        assert!(decode(&s, &t, &[]));
        assert!(decode_brute_force(&s, &t, &[]));
    }

    #[test]
    fn s_equals_t_connected_despite_isolation() {
        let g = generators::star(4);
        let scheme = CycleSpaceScheme::label(&g, 3, Seed::new(8)).unwrap();
        let s = scheme.vertex_label(VertexId::new(1));
        let flabels: Vec<_> = (0..3).map(|e| scheme.edge_label(EdgeId::new(e))).collect();
        assert!(decode(&s, &s, &flabels));
    }

    #[test]
    fn irrelevant_faults_do_not_disconnect() {
        // Faults in a far corner of a grid must not affect nearby pairs.
        let g = generators::grid(4, 4);
        let far = g.find_edge(VertexId::new(14), VertexId::new(15)).unwrap();
        check_all_pairs(&g, &[far], 55);
    }

    #[test]
    fn bridge_in_dumbbell_graph() {
        // Two triangles joined by a bridge; failing the bridge splits them.
        let mut b = ftl_graph::GraphBuilder::new(6);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(1, 2);
        b.add_unit_edge(2, 0);
        b.add_unit_edge(3, 4);
        b.add_unit_edge(4, 5);
        b.add_unit_edge(5, 3);
        let bridge = b.add_unit_edge(0, 3);
        let g = b.build();
        check_all_pairs(&g, &[bridge], 77);
        // Bridge + a triangle edge.
        check_all_pairs(&g, &[bridge, EdgeId::new(0)], 78);
    }
}
