//! Wire-format codecs for the cycle-space labels (see
//! [`ftl_labels::wire`] for the record layout).
//!
//! A vertex label costs 64 payload bits; an edge label costs
//! `b + 161` bits (`32`-bit length prefix + the `b`-bit `φ(e)`, two packed
//! ancestry labels, and the tree bit) — within a constant of the
//! information-theoretic `O(f + log n)` of Theorem 3.6.

use crate::labeling::{CycleSpaceEdgeLabel, CycleSpaceVertexLabel};
use ftl_labels::wire::{LabelKind, WireError, WireLabel, WireReader, WireWriter};
use ftl_labels::AncestryLabel;

impl WireLabel for CycleSpaceVertexLabel {
    const KIND: LabelKind = LabelKind::CycleSpaceVertex;

    fn encode_payload(&self, w: &mut WireWriter) {
        self.anc.encode_payload(w);
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(CycleSpaceVertexLabel {
            anc: AncestryLabel::decode_payload(r)?,
        })
    }
}

impl WireLabel for CycleSpaceEdgeLabel {
    const KIND: LabelKind = LabelKind::CycleSpaceEdge;

    fn encode_payload(&self, w: &mut WireWriter) {
        w.write_len_bits(&self.phi);
        self.anc_u.encode_payload(w);
        self.anc_v.encode_payload(w);
        w.write_bit(self.is_tree);
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(CycleSpaceEdgeLabel {
            phi: r.read_len_bits()?,
            anc_u: AncestryLabel::decode_payload(r)?,
            anc_v: AncestryLabel::decode_payload(r)?,
            is_tree: r.read_bit()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::CycleSpaceScheme;
    use ftl_graph::{generators, EdgeId, VertexId};
    use ftl_seeded::Seed;

    #[test]
    fn scheme_labels_roundtrip() {
        let g = generators::grid(3, 3);
        let scheme = CycleSpaceScheme::label(&g, 5, Seed::new(3)).unwrap();
        for v in 0..g.num_vertices() {
            let l = scheme.vertex_label(VertexId::new(v));
            assert_eq!(CycleSpaceVertexLabel::from_wire(&l.to_wire()).unwrap(), l);
        }
        for e in 0..g.num_edges() {
            let l = scheme.edge_label(EdgeId::new(e));
            assert_eq!(CycleSpaceEdgeLabel::from_wire(&l.to_wire()).unwrap(), l);
        }
    }

    #[test]
    fn kind_confusion_rejected() {
        let g = generators::path(3);
        let scheme = CycleSpaceScheme::label(&g, 2, Seed::new(1)).unwrap();
        let v = scheme.vertex_label(VertexId::new(1)).to_wire();
        assert!(matches!(
            CycleSpaceEdgeLabel::from_wire(&v),
            Err(WireError::WrongKind { .. })
        ));
    }
}
