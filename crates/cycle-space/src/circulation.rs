//! Random binary circulations and the cut-detection labels of Lemma 1.7.
//!
//! A *binary circulation* is an edge set in which every vertex has even
//! degree; circulations are exactly the orthogonal complement of induced
//! edge cuts over GF(2) (Appendix B). Sampling `b` independent random
//! circulations and recording, per edge, the membership pattern `φ(e) ∈
//! {0,1}^b` gives: `⊕_{e∈F} φ(e) = 0` always when `F` is an induced cut and
//! with probability `2^{-b}` otherwise.
//!
//! Sampling is done in the fundamental-cycle basis of a spanning tree `T`:
//! pick `φ(e)` uniformly for each non-tree edge, then set each tree edge's
//! `φ(t)` to the XOR of `φ(e)` over the non-tree edges whose fundamental
//! cycle contains `t`. That XOR is computed in `O((m + n)·b/64)` words by a
//! single bottom-up subtree aggregation (an edge `t = (c, parent(c))` lies
//! on the fundamental cycle of `e = (u, v)` iff exactly one of `u, v` is in
//! the subtree of `c`).

use ftl_gf2::BitVec;
use ftl_graph::{Graph, SpanningTree, VertexId};
use ftl_seeded::Seed;

/// Assigns the `b`-bit cut-detection labels `φ(e)` of Lemma 1.7 to every
/// edge, indexed by edge id.
///
/// # Panics
///
/// Panics if the spanning tree does not span all vertices of `graph`.
pub fn assign_circulation_labels(
    graph: &Graph,
    tree: &SpanningTree,
    b: usize,
    seed: Seed,
) -> Vec<BitVec> {
    assert_eq!(
        tree.num_tree_vertices(),
        graph.num_vertices(),
        "tree must span the (connected) graph"
    );
    let mut stream = seed.stream();
    let mut phi: Vec<BitVec> = Vec::with_capacity(graph.num_edges());
    // Non-tree edges: uniform b-bit strings. Tree edges: zero for now.
    for (id, _) in graph.edge_ids() {
        let mut v = BitVec::zeros(b);
        if !tree.is_tree_edge(id) {
            v.randomize(&mut stream);
        }
        phi.push(v);
    }
    // val[w] = XOR of phi over non-tree edges incident to w.
    let mut val: Vec<BitVec> = vec![BitVec::zeros(b); graph.num_vertices()];
    for (id, e) in graph.edge_ids() {
        if tree.is_tree_edge(id) {
            continue;
        }
        if e.u() == e.v() {
            continue; // self-loops lie on no cut; leave them random
        }
        val[e.u().index()].xor_assign(&phi[id.index()]);
        val[e.v().index()].xor_assign(&phi[id.index()]);
    }
    // Bottom-up: acc(v) = val(v) XOR acc(children); tree edge (v, parent)
    // gets acc(v). Reverse preorder visits children before parents.
    let mut acc = val;
    for &v in tree.preorder().iter().rev() {
        if let Some((p, e)) = tree.parent(v) {
            let child_acc = acc[v.index()].clone();
            phi[e.index()] = child_acc.clone();
            acc[p.index()].xor_assign(&child_acc);
        }
    }
    phi
}

/// XOR of the labels of an edge subset — zero iff the subset is an induced
/// edge cut (w.h.p., Lemma 1.7).
pub fn xor_labels(labels: &[BitVec]) -> BitVec {
    let b = labels.first().map(BitVec::len).unwrap_or(0);
    let mut acc = BitVec::zeros(b);
    for l in labels {
        acc.xor_assign(l);
    }
    acc
}

/// Ground-truth test: is `F` an induced edge cut `δ(S)` of `graph`?
///
/// Used by the unit tests and the Figure-1 experiment to validate the
/// probabilistic labels. `F = δ(S)` for some `S` iff 2-coloring the vertices
/// so that exactly the `F` edges are bichromatic is consistent.
pub fn is_induced_edge_cut(graph: &Graph, fault: &[bool]) -> bool {
    let n = graph.num_vertices();
    let mut color: Vec<Option<bool>> = vec![None; n];
    for start in 0..n {
        if color[start].is_some() {
            continue;
        }
        color[start] = Some(false);
        let mut stack = vec![VertexId::new(start)];
        while let Some(u) = stack.pop() {
            let cu = color[u.index()].expect("colored before push");
            for nb in graph.neighbors(u) {
                let flip = fault.get(nb.edge.index()).copied().unwrap_or(false);
                // Self-loops: a loop in F can never cross a cut.
                if nb.vertex == u {
                    if flip {
                        return false;
                    }
                    continue;
                }
                let want = cu ^ flip;
                match color[nb.vertex.index()] {
                    None => {
                        color[nb.vertex.index()] = Some(want);
                        stack.push(nb.vertex);
                    }
                    Some(c) if c != want => return false,
                    _ => {}
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;

    fn labels_for(g: &Graph, b: usize, seed: u64) -> (SpanningTree, Vec<BitVec>) {
        let t = SpanningTree::bfs_tree(g, VertexId::new(0)).unwrap();
        let phi = assign_circulation_labels(g, &t, b, Seed::new(seed));
        (t, phi)
    }

    /// Every induced cut must XOR to zero — deterministically.
    #[test]
    fn induced_cuts_xor_to_zero() {
        let g = generators::complete(6);
        let (_, phi) = labels_for(&g, 40, 3);
        // All 2^5 vertex bipartitions containing vertex 0 on one side.
        for mask in 0u32..32 {
            let side = |v: usize| v > 0 && (mask >> (v - 1)) & 1 == 1;
            let cut: Vec<BitVec> = g
                .edge_ids()
                .filter(|(_, e)| side(e.u().index()) != side(e.v().index()))
                .map(|(id, _)| phi[id.index()].clone())
                .collect();
            assert!(xor_labels(&cut).is_zero(), "cut mask {mask}");
        }
    }

    /// Non-cuts should XOR to nonzero with overwhelming probability at b=40.
    #[test]
    fn non_cuts_xor_to_nonzero() {
        let g = generators::complete(6);
        let (_, phi) = labels_for(&g, 40, 7);
        let mut mask = vec![false; g.num_edges()];
        // A single edge of K6 is not an induced cut.
        mask[0] = true;
        assert!(!is_induced_edge_cut(&g, &mask));
        assert!(!xor_labels(&[phi[0].clone()]).is_zero());
        // A triangle's edge set is a circulation, not a cut, and XORs to 0
        // only if it IS a cut — check it is correctly classified nonzero...
        // Actually a triangle is a circulation: every subset that is a
        // circulation XORs to 0 only if it is also a cut. Triangles are not
        // cuts in K6, but they ARE circulations, so each sampled circulation
        // intersects them evenly... Lemma 1.7 speaks about cuts: triangle is
        // NOT a cut, so XOR != 0 w.h.p. Verify:
        let tri: Vec<BitVec> = g
            .edge_ids()
            .filter(|(_, e)| {
                let (a, b) = (e.u().index(), e.v().index());
                a < 3 && b < 3
            })
            .map(|(id, _)| phi[id.index()].clone())
            .collect();
        assert_eq!(tri.len(), 3);
        assert!(!xor_labels(&tri).is_zero());
    }

    #[test]
    fn exhaustive_small_graph_agreement() {
        // On a 5-cycle, check ALL 2^5 subsets against ground truth.
        let g = generators::cycle(5);
        let (_, phi) = labels_for(&g, 48, 11);
        for mask in 0u32..32 {
            let fault: Vec<bool> = (0..5).map(|i| (mask >> i) & 1 == 1).collect();
            let subset: Vec<BitVec> = (0..5)
                .filter(|&i| fault[i])
                .map(|i| phi[i].clone())
                .collect();
            let xor_zero = xor_labels(&subset).is_zero();
            let is_cut = is_induced_edge_cut(&g, &fault);
            assert_eq!(xor_zero, is_cut, "mask {mask:05b}");
        }
    }

    #[test]
    fn grid_cut_classification() {
        let g = generators::grid(4, 4);
        let (_, phi) = labels_for(&g, 60, 13);
        // Column cut: edges between columns 1 and 2.
        let fault: Vec<bool> = g
            .edges()
            .iter()
            .map(|e| {
                let (cu, cv) = (e.u().index() % 4, e.v().index() % 4);
                cu.min(cv) == 1 && cu.max(cv) == 2
            })
            .collect();
        assert!(is_induced_edge_cut(&g, &fault));
        let subset: Vec<BitVec> = g
            .edge_ids()
            .filter(|(id, _)| fault[id.index()])
            .map(|(id, _)| phi[id.index()].clone())
            .collect();
        assert_eq!(subset.len(), 4);
        assert!(xor_labels(&subset).is_zero());
        // Remove one edge from the column cut: no longer a cut.
        let partial: Vec<BitVec> = subset[1..].to_vec();
        assert!(!xor_labels(&partial).is_zero());
    }

    #[test]
    fn empty_set_is_a_cut() {
        let g = generators::cycle(4);
        let (_, phi) = labels_for(&g, 16, 1);
        assert!(xor_labels(&[]).is_zero());
        assert!(is_induced_edge_cut(&g, &vec![false; g.num_edges()]));
        let _ = phi;
    }

    #[test]
    fn whole_star_is_a_cut() {
        // All edges of a star form delta({center}).
        let g = generators::star(6);
        let (_, phi) = labels_for(&g, 32, 5);
        let all: Vec<BitVec> = phi.clone();
        assert!(xor_labels(&all).is_zero());
        assert!(is_induced_edge_cut(&g, &vec![true; g.num_edges()]));
    }

    #[test]
    fn tree_edge_singletons_are_cuts_in_trees() {
        // In a tree, every single edge is a bridge = induced cut.
        let g = generators::path(6);
        let (_, phi) = labels_for(&g, 32, 9);
        for (id, _) in g.edge_ids() {
            assert!(
                xor_labels(&[phi[id.index()].clone()]).is_zero(),
                "bridge {id:?} must XOR to zero"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::grid(3, 3);
        let (_, a) = labels_for(&g, 24, 42);
        let (_, b) = labels_for(&g, 24, 42);
        assert_eq!(a, b);
        let (_, c) = labels_for(&g, 24, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn self_loop_never_in_cut() {
        let mut b = ftl_graph::GraphBuilder::new(2);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(0, 0); // self loop, id 1
        let g = b.build();
        let mut fault = vec![false, true];
        assert!(!is_induced_edge_cut(&g, &fault));
        fault[1] = false;
        fault[0] = true;
        assert!(is_induced_edge_cut(&g, &fault));
        let (_, phi) = labels_for(&g, 40, 2);
        assert!(!xor_labels(&[phi[1].clone()]).is_zero());
    }

    #[test]
    fn parallel_edge_pair_is_circulation_not_cut() {
        let mut b = ftl_graph::GraphBuilder::new(2);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(0, 1);
        let g = b.build();
        let (_, phi) = labels_for(&g, 40, 6);
        // Both parallel edges together form delta({0}), a cut.
        assert!(xor_labels(&[phi[0].clone(), phi[1].clone()]).is_zero());
        assert!(is_induced_edge_cut(&g, &[true, true]));
        // One of them alone is not a cut.
        assert!(!is_induced_edge_cut(&g, &[true, false]));
        assert!(!xor_labels(&[phi[0].clone()]).is_zero());
    }
}
