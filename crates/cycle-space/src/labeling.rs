//! The full cycle-space labeling scheme (Section 3.1.1, Theorem 3.6).

use crate::circulation::assign_circulation_labels;
use ftl_gf2::BitVec;
use ftl_graph::{EdgeId, Graph, GraphError, SpanningTree, VertexId};
use ftl_labels::AncestryLabel;
use ftl_seeded::Seed;

/// Default slack constant `c` in `b = f + c·log₂ n` (DESIGN.md S4).
pub const DEFAULT_SLACK: usize = 4;

/// Label of a vertex: its ancestry label in the spanning tree
/// (`O(log n)` bits).
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct CycleSpaceVertexLabel {
    /// Ancestry label `ANC_T(v)`.
    pub anc: AncestryLabel,
}

/// Label of an edge: `(φ(e), ANC_T(u), ANC_T(v), tree-bit)` —
/// `O(f + log n)` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSpaceEdgeLabel {
    /// The `b`-bit cut-detection string of Lemma 1.7.
    pub phi: BitVec,
    /// Ancestry label of one endpoint.
    pub anc_u: AncestryLabel,
    /// Ancestry label of the other endpoint.
    pub anc_v: AncestryLabel,
    /// Whether the edge belongs to the spanning tree `T`.
    pub is_tree: bool,
}

impl CycleSpaceEdgeLabel {
    /// Label length in bits (`b + 4·⌈log 2n⌉ + 1`).
    pub fn bits(&self, max_time: u32) -> usize {
        self.phi.len() + 2 * AncestryLabel::bits(max_time) + 1
    }

    /// Whether this (tree) edge lies on the tree path from the root to the
    /// vertex labeled `x` — true iff both endpoints are ancestors of `x`.
    pub fn on_root_path_of(&self, x: &AncestryLabel) -> bool {
        self.is_tree && self.anc_u.is_ancestor_of(x) && self.anc_v.is_ancestor_of(x)
    }
}

/// The labeling side of the cycle-space scheme: holds every vertex/edge
/// label of one (connected) graph.
///
/// Label access is by id; the decoder ([`crate::decode()`]) needs only the
/// labels of the query triple `⟨s, t, F⟩`.
#[derive(Debug, Clone)]
pub struct CycleSpaceScheme {
    vertex_labels: Vec<CycleSpaceVertexLabel>,
    edge_labels: Vec<CycleSpaceEdgeLabel>,
    b: usize,
    max_time: u32,
}

impl CycleSpaceScheme {
    /// Labels a connected graph against up to `f` faults, with
    /// `b = f + DEFAULT_SLACK·⌈log₂ n⌉` bits of cut-detection material.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if `graph` is not connected.
    pub fn label(graph: &Graph, f: usize, seed: Seed) -> Result<Self, GraphError> {
        let n = graph.num_vertices().max(2);
        // Floor the slack at 16 bits so the per-query failure probability
        // stays below 2^-16 even on tiny graphs.
        let slack = (DEFAULT_SLACK * (usize::BITS - (n - 1).leading_zeros()) as usize).max(16);
        Self::label_with_bits(graph, f + slack, seed)
    }

    /// Labels with an explicit bit budget `b` (Lemma 1.7's parameter).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if `graph` is not connected.
    pub fn label_with_bits(graph: &Graph, b: usize, seed: Seed) -> Result<Self, GraphError> {
        let root = VertexId::new(0);
        let tree = SpanningTree::bfs_tree(graph, root)?;
        Self::label_with_tree(graph, &tree, b, seed)
    }

    /// Labels with a caller-supplied spanning tree (used by schemes layering
    /// on top, which fix the tree themselves).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if the tree does not span the
    /// graph.
    pub fn label_with_tree(
        graph: &Graph,
        tree: &SpanningTree,
        b: usize,
        seed: Seed,
    ) -> Result<Self, GraphError> {
        if tree.num_tree_vertices() != graph.num_vertices() {
            return Err(GraphError::Disconnected);
        }
        let phi = assign_circulation_labels(graph, tree, b, seed.derive(0xC1C));
        // Per-vertex and per-edge label assembly is embarrassingly parallel
        // (`parallel` feature; see `ftl-par`).
        let vertex_labels =
            ftl_par::par_map_indexed(graph.num_vertices(), |i| CycleSpaceVertexLabel {
                anc: AncestryLabel::of(tree, VertexId::new(i)),
            });
        let edge_labels = ftl_par::par_map_indexed(graph.num_edges(), |i| {
            let id = EdgeId::new(i);
            let e = graph.edge(id);
            CycleSpaceEdgeLabel {
                phi: phi[i].clone(),
                anc_u: AncestryLabel::of(tree, e.u()),
                anc_v: AncestryLabel::of(tree, e.v()),
                is_tree: tree.is_tree_edge(id),
            }
        });
        Ok(CycleSpaceScheme {
            vertex_labels,
            edge_labels,
            b,
            max_time: tree.max_time(),
        })
    }

    /// The label of vertex `v`.
    pub fn vertex_label(&self, v: VertexId) -> CycleSpaceVertexLabel {
        self.vertex_labels[v.index()]
    }

    /// The label of edge `e`.
    pub fn edge_label(&self, e: EdgeId) -> CycleSpaceEdgeLabel {
        self.edge_labels[e.index()].clone()
    }

    /// The cut-detection bit budget `b`.
    pub fn bits_b(&self) -> usize {
        self.b
    }

    /// Number of labeled vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of labeled edges.
    pub fn num_edges(&self) -> usize {
        self.edge_labels.len()
    }

    /// Maximum DFS time (for bit accounting).
    pub fn max_time(&self) -> u32 {
        self.max_time
    }

    /// Length of the longest vertex label, in bits (Theorem 3.6:
    /// `O(log n)`).
    pub fn vertex_label_bits(&self) -> usize {
        AncestryLabel::bits(self.max_time)
    }

    /// Length of the longest edge label, in bits (Theorem 3.6:
    /// `O(f + log n)`).
    pub fn edge_label_bits(&self) -> usize {
        self.edge_labels
            .iter()
            .map(|l| l.bits(self.max_time))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;

    #[test]
    fn label_sizes_track_f_and_n() {
        let g = generators::grid(4, 4);
        let small = CycleSpaceScheme::label(&g, 1, Seed::new(1)).unwrap();
        let big = CycleSpaceScheme::label(&g, 32, Seed::new(1)).unwrap();
        assert_eq!(big.edge_label_bits() - small.edge_label_bits(), 31);
        assert_eq!(small.vertex_label_bits(), big.vertex_label_bits());
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut b = ftl_graph::GraphBuilder::new(4);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(2, 3);
        let g = b.build();
        assert!(matches!(
            CycleSpaceScheme::label(&g, 2, Seed::new(0)),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn on_root_path_classification() {
        let g = generators::path(4); // rooted at 0
        let scheme = CycleSpaceScheme::label(&g, 2, Seed::new(5)).unwrap();
        let t3 = scheme.vertex_label(VertexId::new(3)).anc;
        let t1 = scheme.vertex_label(VertexId::new(1)).anc;
        // Edge (0,1) lies on the root->3 path and on the root->1 path.
        let e01 = scheme.edge_label(EdgeId::new(0));
        assert!(e01.on_root_path_of(&t3));
        assert!(e01.on_root_path_of(&t1));
        // Edge (2,3) lies on root->3 but not root->1.
        let e23 = scheme.edge_label(EdgeId::new(2));
        assert!(e23.on_root_path_of(&t3));
        assert!(!e23.on_root_path_of(&t1));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::cycle(8);
        let a = CycleSpaceScheme::label(&g, 3, Seed::new(9)).unwrap();
        let b = CycleSpaceScheme::label(&g, 3, Seed::new(9)).unwrap();
        for (id, _) in g.edge_ids() {
            assert_eq!(a.edge_label(id), b.edge_label(id));
        }
    }

    #[test]
    fn explicit_bit_budget_respected() {
        let g = generators::cycle(5);
        let s = CycleSpaceScheme::label_with_bits(&g, 17, Seed::new(2)).unwrap();
        assert_eq!(s.bits_b(), 17);
        assert_eq!(s.edge_label(EdgeId::new(0)).phi.len(), 17);
    }
}
