//! Live (incrementally maintained) cycle-space labeling for churn without
//! full rebuilds.
//!
//! The static [`CycleSpaceScheme`](crate::CycleSpaceScheme) is build-once:
//! any topology change forces a relabel of the whole graph. This module
//! maintains the same label family — ancestry intervals over a spanning
//! tree plus `b`-bit cut-detection strings `φ` forming a circulation —
//! under **edge and vertex removals**, touching only the labels that
//! actually change:
//!
//! * Removing a non-tree edge `e = (u, v)` removes one fundamental cycle
//!   from the cycle space. XOR-ing `φ(e)` into every tree edge on
//!   `tree_path(u, v)` restores the circulation invariant (per bit, the
//!   edges carrying a set bit keep even degree at every vertex) and no
//!   ancestry label moves.
//! * Removing a tree edge `t` re-hangs the orphaned subtree on a
//!   replacement non-tree edge `e′` crossing the cut. XOR-ing `φ(t)` along
//!   the fundamental cycle of `e′` (which contains `t`) zeroes `φ(t)` and
//!   preserves circulations; only the re-hung subtree is renumbered, into
//!   the spare interval left under the new attachment point by *spread*
//!   DFS numbering (raw times are multiplied by a large stride so that
//!   gaps exist between consecutive intervals).
//! * Removing a vertex removes its incident edges non-tree-first; when its
//!   last tree edge goes, the vertex is an isolated leaf and the
//!   circulation invariant forces that edge's `φ` to zero already.
//!
//! When a re-hang cannot fit in the available interval gap (after many
//! churn rounds) the scheme transparently falls back to an internal full
//! relabel with a freshly derived seed and reports the fact through
//! [`LiveDelta::full`], so callers (the engine's epoch store) know to
//! rebuild rather than patch.
//!
//! Removals that would disconnect the alive graph are rejected with
//! [`LiveError::WouldDisconnect`] and leave the structure untouched — the
//! scheme answers *connectivity under faults* and keeps the alive graph
//! connected as its resting state, mirroring the DRFE-R recovery model
//! (repair after failure, serve during repair).

use ftl_gf2::BitVec;
use ftl_graph::{traversal, EdgeId, Graph, VertexId};
use ftl_labels::AncestryLabel;
use ftl_seeded::Seed;

use crate::labeling::{CycleSpaceEdgeLabel, CycleSpaceVertexLabel};

/// Errors surfaced by live mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveError {
    /// The vertex is not alive (never existed or already removed).
    MissingVertex(VertexId),
    /// The edge is not alive (never existed or already removed).
    MissingEdge(EdgeId),
    /// Removing this edge/vertex would disconnect the alive graph.
    WouldDisconnect,
    /// Refusing to remove the final alive vertex.
    LastVertex,
    /// The initial graph is not connected.
    Disconnected,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::MissingVertex(v) => write!(f, "vertex {} is not alive", v.index()),
            LiveError::MissingEdge(e) => write!(f, "edge {} is not alive", e.index()),
            LiveError::WouldDisconnect => write!(f, "removal would disconnect the alive graph"),
            LiveError::LastVertex => write!(f, "refusing to remove the last alive vertex"),
            LiveError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl std::error::Error for LiveError {}

/// Change set accumulated since the last [`LiveCycleSpace::take_delta`].
///
/// `upsert` ids are alive and carry changed labels; `removed` ids are dead
/// and must be evicted from any derived store. When `full` is set the
/// scheme performed an internal relabel-from-scratch and *every* alive
/// label changed — consumers should rebuild rather than patch.
#[derive(Debug, Clone, Default)]
pub struct LiveDelta {
    /// Alive vertices whose labels changed.
    pub vertex_upserts: Vec<VertexId>,
    /// Alive edges whose labels changed.
    pub edge_upserts: Vec<EdgeId>,
    /// Vertices removed since the last delta.
    pub removed_vertices: Vec<VertexId>,
    /// Edges removed since the last delta.
    pub removed_edges: Vec<EdgeId>,
    /// Whether the scheme fell back to a full relabel.
    pub full: bool,
}

impl LiveDelta {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.vertex_upserts.is_empty()
            && self.edge_upserts.is_empty()
            && self.removed_vertices.is_empty()
            && self.removed_edges.is_empty()
            && !self.full
    }
}

/// Outcome of a tree-edge removal attempt (internal).
enum TreeRemove {
    Done,
    /// No spare numbering interval for the re-hang: caller must relabel.
    NeedRebuild,
    /// No replacement edge crosses the cut: removal would disconnect.
    WouldDisconnect,
}

/// Incrementally maintained cycle-space labeling over a fixed edge-id
/// space with liveness masks.
///
/// The underlying [`Graph`] is immutable; removals flip `alive` masks and
/// patch the spanning tree and `φ` bank in place. Label ids therefore stay
/// stable across the lifetime of the structure, which is what lets a
/// derived store splice unchanged shards between epochs.
#[derive(Debug, Clone)]
pub struct LiveCycleSpace {
    graph: Graph,
    b: usize,
    seed: Seed,
    /// Number of internal full relabels performed (seeds each relabel).
    relabels: u64,
    root: VertexId,
    alive_vertex: Vec<bool>,
    alive_edge: Vec<bool>,
    phi: Vec<BitVec>,
    is_tree: Vec<bool>,
    parent: Vec<Option<(VertexId, EdgeId)>>,
    children: Vec<Vec<VertexId>>,
    depth: Vec<u32>,
    pre: Vec<u32>,
    post: Vec<u32>,
    dirty_vertex: Vec<bool>,
    dirty_edge: Vec<bool>,
    removed_vertices: Vec<VertexId>,
    removed_edges: Vec<EdgeId>,
    all_dirty: bool,
}

impl LiveCycleSpace {
    /// Builds the live scheme against up to `f` faults, with the same
    /// `b = f + slack` width the static scheme would pick for this graph.
    pub fn new(graph: &Graph, f: usize, seed: Seed) -> Result<Self, LiveError> {
        let n = graph.num_vertices().max(2);
        let slack = (4 * (usize::BITS - (n - 1).leading_zeros()) as usize).max(16);
        Self::with_bits(graph, f + slack, seed)
    }

    /// Builds the live scheme with an explicit `φ` width `b`.
    pub fn with_bits(graph: &Graph, b: usize, seed: Seed) -> Result<Self, LiveError> {
        if graph.num_vertices() == 0 || !traversal::is_connected(graph) {
            return Err(LiveError::Disconnected);
        }
        let nv = graph.num_vertices();
        let ne = graph.num_edges();
        let mut live = LiveCycleSpace {
            graph: graph.clone(),
            b,
            seed,
            relabels: 0,
            root: VertexId::new(0),
            alive_vertex: vec![true; nv],
            alive_edge: vec![true; ne],
            phi: vec![BitVec::zeros(b); ne],
            is_tree: vec![false; ne],
            parent: vec![None; nv],
            children: vec![Vec::new(); nv],
            depth: vec![0; nv],
            pre: vec![u32::MAX; nv],
            post: vec![u32::MAX; nv],
            dirty_vertex: vec![false; nv],
            dirty_edge: vec![false; ne],
            removed_vertices: Vec::new(),
            removed_edges: Vec::new(),
            all_dirty: false,
        };
        live.relabel_from_scratch();
        Ok(live)
    }

    /// The underlying (immutable) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// `φ` width in bits.
    pub fn bits(&self) -> usize {
        self.b
    }

    /// Current spanning-tree root.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Number of internal full relabels performed so far.
    pub fn relabels(&self) -> u64 {
        self.relabels
    }

    /// Whether `v` is alive.
    pub fn is_alive_vertex(&self, v: VertexId) -> bool {
        v.index() < self.alive_vertex.len() && self.alive_vertex[v.index()]
    }

    /// Whether `e` is alive.
    pub fn is_alive_edge(&self, e: EdgeId) -> bool {
        e.index() < self.alive_edge.len() && self.alive_edge[e.index()]
    }

    /// Number of alive vertices.
    pub fn num_alive_vertices(&self) -> usize {
        self.alive_vertex.iter().filter(|&&a| a).count()
    }

    /// Number of alive edges.
    pub fn num_alive_edges(&self) -> usize {
        self.alive_edge.iter().filter(|&&a| a).count()
    }

    /// Alive vertices in id order.
    pub fn alive_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive_vertex
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| VertexId::new(i))
    }

    /// Alive edges in id order.
    pub fn alive_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.alive_edge
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| EdgeId::new(i))
    }

    /// Forbidden-edge mask covering every *dead* edge — the base mask for
    /// ground-truth reachability on the mutated topology (union it with a
    /// query's fault set).
    pub fn forbidden_base(&self) -> Vec<bool> {
        self.alive_edge.iter().map(|&a| !a).collect()
    }

    /// Label of an alive vertex.
    pub fn vertex_label(&self, v: VertexId) -> CycleSpaceVertexLabel {
        debug_assert!(self.is_alive_vertex(v));
        CycleSpaceVertexLabel {
            anc: AncestryLabel {
                pre: self.pre[v.index()],
                post: self.post[v.index()],
            },
        }
    }

    /// Label of an alive edge.
    pub fn edge_label(&self, e: EdgeId) -> CycleSpaceEdgeLabel {
        debug_assert!(self.is_alive_edge(e));
        let edge = self.graph.edge(e);
        let anc_of = |v: VertexId| AncestryLabel {
            pre: self.pre[v.index()],
            post: self.post[v.index()],
        };
        CycleSpaceEdgeLabel {
            phi: self.phi[e.index()].clone(),
            anc_u: anc_of(edge.u()),
            anc_v: anc_of(edge.v()),
            is_tree: self.is_tree[e.index()],
        }
    }

    /// Drains the accumulated change set.
    pub fn take_delta(&mut self) -> LiveDelta {
        let mut delta = LiveDelta {
            full: self.all_dirty,
            removed_vertices: std::mem::take(&mut self.removed_vertices),
            removed_edges: std::mem::take(&mut self.removed_edges),
            ..LiveDelta::default()
        };
        if self.all_dirty {
            delta.vertex_upserts = self.alive_vertices().collect();
            delta.edge_upserts = self.alive_edges().collect();
        } else {
            for (i, d) in self.dirty_vertex.iter().enumerate() {
                if *d && self.alive_vertex[i] {
                    delta.vertex_upserts.push(VertexId::new(i));
                }
            }
            for (i, d) in self.dirty_edge.iter().enumerate() {
                if *d && self.alive_edge[i] {
                    delta.edge_upserts.push(EdgeId::new(i));
                }
            }
        }
        self.dirty_vertex.iter_mut().for_each(|d| *d = false);
        self.dirty_edge.iter_mut().for_each(|d| *d = false);
        self.all_dirty = false;
        delta
    }

    /// Removes an alive edge, patching `φ` along its fundamental cycle (or
    /// re-hanging the orphaned subtree for a tree edge). Errors leave the
    /// structure unchanged.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<(), LiveError> {
        if !self.is_alive_edge(e) {
            return Err(LiveError::MissingEdge(e));
        }
        if self.is_tree[e.index()] {
            match self.remove_tree_edge(e) {
                TreeRemove::Done => Ok(()),
                TreeRemove::WouldDisconnect => Err(LiveError::WouldDisconnect),
                TreeRemove::NeedRebuild => {
                    self.kill_edge(e);
                    self.relabel_from_scratch();
                    Ok(())
                }
            }
        } else {
            self.remove_non_tree_edge(e);
            Ok(())
        }
    }

    /// Removes an alive vertex and all its incident edges. Errors leave
    /// the structure unchanged.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<(), LiveError> {
        if !self.is_alive_vertex(v) {
            return Err(LiveError::MissingVertex(v));
        }
        let alive_count = self.num_alive_vertices();
        if alive_count == 1 {
            return Err(LiveError::LastVertex);
        }
        // Connectivity pre-check: the alive graph minus v (and all its
        // incident edges) must stay connected.
        let mut forbidden = self.forbidden_base();
        for nb in self.graph.neighbors(v) {
            forbidden[nb.edge.index()] = true;
        }
        let source = self
            .alive_vertices()
            .find(|&w| w != v)
            .expect("at least two alive vertices");
        let bfs = traversal::bfs(&self.graph, source, &forbidden);
        let reached = (0..self.graph.num_vertices())
            .filter(|&i| self.alive_vertex[i] && VertexId::new(i) != v)
            .all(|i| bfs.dist[i].is_some());
        if !reached {
            return Err(LiveError::WouldDisconnect);
        }

        if v == self.root {
            // Re-rooting is a global renumbering anyway: take the rebuild.
            self.kill_vertex_brutally(v);
            self.relabel_from_scratch();
            return Ok(());
        }

        // 1. Non-tree incident edges first (cheap fundamental-cycle XORs);
        //    this also guarantees later tree-edge replacements never
        //    attach anything back to v.
        let incident: Vec<EdgeId> = self.graph.neighbors(v).iter().map(|nb| nb.edge).collect();
        for e in incident {
            if self.is_alive_edge(e) && !self.is_tree[e.index()] {
                self.remove_non_tree_edge(e);
            }
        }

        // 2. Child tree edges: re-hang each child subtree elsewhere. The
        //    pre-check guarantees a replacement exists; a failed gap check
        //    falls back to a full relabel.
        while let Some(&c) = self.children[v.index()].first() {
            let (_, te) = self.parent[c.index()].expect("child has parent edge");
            match self.remove_tree_edge(te) {
                TreeRemove::Done => {}
                TreeRemove::NeedRebuild | TreeRemove::WouldDisconnect => {
                    self.kill_vertex_brutally(v);
                    self.relabel_from_scratch();
                    return Ok(());
                }
            }
        }

        // 3. Final parent edge: v is now a leaf whose only alive incident
        //    edge is its parent edge t. Per bit, the circulation invariant
        //    forces φ(t) = 0 (t is the only edge that could carry a set
        //    bit at v), so dropping it preserves all circulations.
        let (p, t) = self.parent[v.index()].expect("non-root has a parent");
        debug_assert!(
            self.phi[t.index()].is_zero(),
            "leaf parent edge must carry zero φ"
        );
        self.kill_edge(t);
        self.children[p.index()].retain(|&w| w != v);
        self.parent[v.index()] = None;

        // 4. Kill the vertex itself.
        self.alive_vertex[v.index()] = false;
        self.removed_vertices.push(v);
        Ok(())
    }

    /// Forces a full relabel of the alive graph (fresh tree, numbering,
    /// and `φ` bank). The next [`take_delta`](Self::take_delta) reports
    /// `full = true`. This is what a non-incremental consumer does every
    /// round — exposed so benchmarks can measure that baseline honestly.
    pub fn relabel(&mut self) {
        self.relabel_from_scratch();
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Marks an edge dead and zeroes its φ row. Does not touch the tree.
    fn kill_edge(&mut self, e: EdgeId) {
        self.alive_edge[e.index()] = false;
        self.is_tree[e.index()] = false;
        self.phi[e.index()] = BitVec::zeros(self.b);
        self.removed_edges.push(e);
    }

    /// Kills `v` and every alive incident edge without repairing anything.
    /// Only valid immediately before a full relabel.
    fn kill_vertex_brutally(&mut self, v: VertexId) {
        let incident: Vec<EdgeId> = self.graph.neighbors(v).iter().map(|nb| nb.edge).collect();
        for e in incident {
            if self.is_alive_edge(e) {
                self.kill_edge(e);
            }
        }
        self.alive_vertex[v.index()] = false;
        self.removed_vertices.push(v);
    }

    /// Removes a non-tree alive edge: XOR `φ(e)` into every tree edge on
    /// the tree path between its endpoints (the rest of its fundamental
    /// cycle), then drop it. A self-loop has an empty path.
    fn remove_non_tree_edge(&mut self, e: EdgeId) {
        let edge = self.graph.edge(e);
        let (u, v) = (edge.u(), edge.v());
        if u != v {
            let cyc = self.phi[e.index()].clone();
            for t in self.tree_path(u, v) {
                self.phi[t.index()].xor_assign(&cyc);
                self.dirty_edge[t.index()] = true;
            }
        }
        self.kill_edge(e);
    }

    /// Tree edges on the unique tree path between `u` and `v`, by
    /// depth-balanced parent climbing (order is irrelevant for XOR).
    fn tree_path(&self, u: VertexId, v: VertexId) -> Vec<EdgeId> {
        let mut path = Vec::new();
        let (mut a, mut b) = (u, v);
        while self.depth[a.index()] > self.depth[b.index()] {
            let (p, e) = self.parent[a.index()].expect("deeper vertex has parent");
            path.push(e);
            a = p;
        }
        while self.depth[b.index()] > self.depth[a.index()] {
            let (p, e) = self.parent[b.index()].expect("deeper vertex has parent");
            path.push(e);
            b = p;
        }
        while a != b {
            let (pa, ea) = self.parent[a.index()].expect("vertex below lca has parent");
            let (pb, eb) = self.parent[b.index()].expect("vertex below lca has parent");
            path.push(ea);
            path.push(eb);
            a = pa;
            b = pb;
        }
        path
    }

    /// Subtree of `c` (including `c`) via the children lists.
    fn subtree_of(&self, c: VertexId) -> Vec<VertexId> {
        let mut sub = vec![c];
        let mut stack = vec![c];
        while let Some(w) = stack.pop() {
            for &ch in &self.children[w.index()] {
                sub.push(ch);
                stack.push(ch);
            }
        }
        sub
    }

    /// Removes an alive tree edge by re-hanging the orphaned subtree on a
    /// replacement non-tree edge. All checks happen before any mutation.
    fn remove_tree_edge(&mut self, e: EdgeId) -> TreeRemove {
        let edge = self.graph.edge(e);
        let (eu, ev) = (edge.u(), edge.v());
        // The child endpoint is the one whose parent edge is e.
        let c = if self.parent[eu.index()].is_some_and(|(_, pe)| pe == e) {
            eu
        } else {
            debug_assert!(self.parent[ev.index()].is_some_and(|(_, pe)| pe == e));
            ev
        };
        let p = self.parent[c.index()]
            .expect("tree-edge child has parent")
            .0;

        let sub = self.subtree_of(c);
        let (c_pre, c_post) = (self.pre[c.index()], self.post[c.index()]);
        let in_sub = |w: VertexId, pre: &[u32]| c_pre <= pre[w.index()] && pre[w.index()] <= c_post;

        // Replacement search: an alive non-tree edge from the subtree to
        // the rest of the alive graph.
        let mut replacement: Option<(VertexId, VertexId, EdgeId)> = None;
        'search: for &w in &sub {
            for nb in self.graph.neighbors(w) {
                if nb.edge != e
                    && self.is_alive_edge(nb.edge)
                    && !self.is_tree[nb.edge.index()]
                    && self.alive_vertex[nb.vertex.index()]
                    && !in_sub(nb.vertex, &self.pre)
                {
                    replacement = Some((w, nb.vertex, nb.edge));
                    break 'search;
                }
            }
        }
        let Some((x, y, rep)) = replacement else {
            return TreeRemove::WouldDisconnect;
        };

        // Gap check (still no mutation): the re-hung subtree needs 2k
        // fresh DFS times strictly between y's deepest existing child
        // interval and post(y).
        let k = sub.len() as u64;
        let low = self.children[y.index()]
            .iter()
            .map(|ch| self.post[ch.index()])
            .max()
            .unwrap_or(0)
            .max(self.pre[y.index()]);
        let high = self.post[y.index()];
        let avail = (high as u64).saturating_sub(low as u64).saturating_sub(1);
        let step = avail / (2 * k);
        if step == 0 {
            return TreeRemove::NeedRebuild;
        }

        // --- Mutation starts here ---

        // φ repair: XOR φ(e) along the fundamental cycle of the
        // replacement edge (tree path x..y plus rep itself). The path
        // contains e, so φ(e) self-cancels to zero; every circulation is
        // preserved because we added a cycle's characteristic vector.
        let cyc = self.phi[e.index()].clone();
        if !cyc.is_zero() {
            for t in self.tree_path(x, y) {
                self.phi[t.index()].xor_assign(&cyc);
                self.dirty_edge[t.index()] = true;
            }
            self.phi[rep.index()].xor_assign(&cyc);
        }
        debug_assert!(self.phi[e.index()].is_zero());

        // Drop e from the tree and the alive set.
        self.children[p.index()].retain(|&w| w != c);
        self.parent[c.index()] = None;
        self.kill_edge(e);

        // Reverse the parent chain x → … → c so the subtree hangs off x.
        let mut chain = vec![x];
        let mut chain_edges = Vec::new();
        let mut w = x;
        while w != c {
            let (pw, ew) = self.parent[w.index()].expect("chain inside subtree");
            chain_edges.push(ew);
            chain.push(pw);
            w = pw;
        }
        for i in 0..chain_edges.len() {
            self.children[chain[i + 1].index()].retain(|&z| z != chain[i]);
        }
        for i in 0..chain_edges.len() {
            self.parent[chain[i + 1].index()] = Some((chain[i], chain_edges[i]));
            self.children[chain[i].index()].push(chain[i + 1]);
        }
        self.parent[x.index()] = Some((y, rep));
        self.children[y.index()].push(x);
        self.is_tree[rep.index()] = true;
        self.dirty_edge[rep.index()] = true;

        // Renumber the subtree into the gap under y with stride `step`.
        let mut slot = 0u64;
        let mut next_time = || {
            slot += 1;
            (low as u64 + slot * step) as u32
        };
        self.depth[x.index()] = self.depth[y.index()] + 1;
        let mut stack = vec![(x, false)];
        while let Some((w, done)) = stack.pop() {
            if done {
                self.post[w.index()] = next_time();
                continue;
            }
            self.pre[w.index()] = next_time();
            stack.push((w, true));
            // Push children in reverse so the DFS visits them in order.
            let kids: Vec<VertexId> = self.children[w.index()].clone();
            for &ch in kids.iter().rev() {
                self.depth[ch.index()] = self.depth[w.index()] + 1;
                stack.push((ch, false));
            }
        }
        debug_assert_eq!(slot, 2 * k);
        debug_assert!(self.post[x.index()] < high);

        // Dirty marking: every subtree vertex moved, so its own label and
        // every alive incident edge label (which embeds endpoint ancestry)
        // changed.
        for &w in &sub {
            self.dirty_vertex[w.index()] = true;
            for nb in self.graph.neighbors(w) {
                if self.is_alive_edge(nb.edge) {
                    self.dirty_edge[nb.edge.index()] = true;
                }
            }
        }
        TreeRemove::Done
    }

    /// Full relabel of the alive graph with a freshly derived seed: new
    /// spanning tree (BFS from the lowest alive id), spread DFS numbering,
    /// and a fresh circulation bank. Sets `all_dirty`.
    fn relabel_from_scratch(&mut self) {
        self.relabels += 1;
        ftl_obs::global().live.relabels.inc();
        let seed = self.seed.derive(0x11FE).derive(self.relabels);
        let root = self
            .alive_vertices()
            .next()
            .expect("relabel requires an alive vertex");
        self.root = root;

        let forbidden = self.forbidden_base();
        let bfs = traversal::bfs(&self.graph, root, &forbidden);
        debug_assert!(
            (0..self.graph.num_vertices())
                .filter(|&i| self.alive_vertex[i])
                .all(|i| bfs.dist[i].is_some()),
            "alive graph must be connected at relabel time"
        );

        for v in 0..self.graph.num_vertices() {
            self.parent[v] = None;
            self.children[v].clear();
            self.depth[v] = 0;
            self.pre[v] = u32::MAX;
            self.post[v] = u32::MAX;
        }
        for v in 0..self.graph.num_vertices() {
            if !self.alive_vertex[v] {
                continue;
            }
            if let Some((p, e)) = bfs.parent[v] {
                self.parent[v] = Some((p, e));
                self.children[p.index()].push(VertexId::new(v));
            }
        }

        // Spread DFS numbering: raw times 1..=2k scaled by a stride so
        // that later re-hangs find spare values between intervals.
        let k = self.num_alive_vertices() as u64;
        let stride = ((u32::MAX - 2) as u64 / (2 * k + 2)) as u32;
        let mut raw = 0u32;
        let mut stack = vec![(root, false)];
        while let Some((w, done)) = stack.pop() {
            if done {
                raw += 1;
                self.post[w.index()] = raw * stride;
                continue;
            }
            raw += 1;
            self.pre[w.index()] = raw * stride;
            stack.push((w, true));
            let kids: Vec<VertexId> = self.children[w.index()].clone();
            for &ch in kids.iter().rev() {
                self.depth[ch.index()] = self.depth[w.index()] + 1;
                stack.push((ch, false));
            }
        }

        // Tree membership and a fresh circulation bank.
        for e in 0..self.graph.num_edges() {
            self.is_tree[e] = false;
            self.phi[e] = BitVec::zeros(self.b);
        }
        for v in 0..self.graph.num_vertices() {
            if let Some((_, e)) = self.parent[v] {
                self.is_tree[e.index()] = true;
            }
        }
        let mut stream = seed.stream();
        for e in 0..self.graph.num_edges() {
            if self.alive_edge[e] && !self.is_tree[e] {
                self.phi[e].randomize(&mut stream);
            }
        }
        // Bottom-up aggregate: φ(parent edge of w) = XOR of φ over all
        // non-tree alive edges with exactly one endpoint in subtree(w).
        // Computed as in the static scheme: per-vertex XOR of incident
        // non-tree φ (self-loops skipped), swept bottom-up in reverse
        // preorder.
        let mut order: Vec<VertexId> = self.alive_vertices().collect();
        order.sort_by_key(|v| self.pre[v.index()]);
        let mut acc: Vec<BitVec> = vec![BitVec::zeros(self.b); self.graph.num_vertices()];
        for &w in &order {
            for nb in self.graph.neighbors(w) {
                if self.is_alive_edge(nb.edge) && !self.is_tree[nb.edge.index()] && nb.vertex != w {
                    let phi = self.phi[nb.edge.index()].clone();
                    acc[w.index()].xor_assign(&phi);
                }
            }
        }
        for &w in order.iter().rev() {
            if let Some((p, e)) = self.parent[w.index()] {
                self.phi[e.index()] = acc[w.index()].clone();
                let up = acc[w.index()].clone();
                acc[p.index()].xor_assign(&up);
            }
        }

        self.all_dirty = true;
    }

    /// Debug check: per bit, alive edges carrying a set bit have even
    /// degree at every alive vertex (XOR of incident φ is zero
    /// everywhere, self-loops excluded).
    #[doc(hidden)]
    pub fn check_circulation(&self) -> bool {
        for v in self.alive_vertices() {
            let mut x = BitVec::zeros(self.b);
            for nb in self.graph.neighbors(v) {
                if self.is_alive_edge(nb.edge) && nb.vertex != v {
                    x.xor_assign(&self.phi[nb.edge.index()]);
                }
            }
            if !x.is_zero() {
                return false;
            }
        }
        true
    }

    /// Debug check: the alive tree edges form a spanning tree of the
    /// alive graph and ancestry intervals nest properly.
    #[doc(hidden)]
    pub fn check_tree(&self) -> bool {
        let k = self.num_alive_vertices();
        let tree_edges = (0..self.graph.num_edges())
            .filter(|&e| self.alive_edge[e] && self.is_tree[e])
            .count();
        if tree_edges != k.saturating_sub(1) {
            return false;
        }
        for v in self.alive_vertices() {
            if self.pre[v.index()] >= self.post[v.index()] {
                return false;
            }
            match self.parent[v.index()] {
                None => {
                    if v != self.root {
                        return false;
                    }
                }
                Some((p, e)) => {
                    if !self.alive_vertex[p.index()]
                        || !self.alive_edge[e.index()]
                        || !self.is_tree[e.index()]
                    {
                        return false;
                    }
                    // Parent interval strictly contains the child's.
                    if !(self.pre[p.index()] < self.pre[v.index()]
                        && self.post[v.index()] < self.post[p.index()])
                    {
                        return false;
                    }
                    if !self.children[p.index()].contains(&v) {
                        return false;
                    }
                    if self.depth[v.index()] != self.depth[p.index()] + 1 {
                        return false;
                    }
                }
            }
        }
        // Every alive vertex must be reachable from the root via children.
        if self.subtree_of(self.root).len() != k {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;

    fn assert_invariants(live: &LiveCycleSpace) {
        assert!(live.check_tree(), "tree invariant violated");
        assert!(live.check_circulation(), "circulation invariant violated");
    }

    /// Ground truth: s-t connectivity on the alive graph.
    fn alive_connected(live: &LiveCycleSpace, s: VertexId, t: VertexId) -> bool {
        traversal::connected_avoiding(live.graph(), s, t, &live.forbidden_base())
    }

    #[test]
    fn initial_labeling_is_consistent() {
        for g in [
            generators::path(8),
            generators::cycle(9),
            generators::grid(4, 5),
            generators::complete(6),
        ] {
            let live = LiveCycleSpace::new(&g, 4, Seed::new(7)).unwrap();
            assert_invariants(&live);
            assert_eq!(live.num_alive_vertices(), g.num_vertices());
            assert_eq!(live.num_alive_edges(), g.num_edges());
        }
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut b = ftl_graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(
            LiveCycleSpace::new(&g, 4, Seed::new(1)).unwrap_err(),
            LiveError::Disconnected
        );
    }

    #[test]
    fn non_tree_edge_removal_patches_path_only() {
        let g = generators::cycle(10);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(3)).unwrap();
        live.take_delta();
        // A cycle has exactly one non-tree edge.
        let nt = live
            .alive_edges()
            .find(|&e| !live.is_tree[e.index()])
            .unwrap();
        live.remove_edge(nt).unwrap();
        assert_invariants(&live);
        let delta = live.take_delta();
        assert!(!delta.full);
        assert_eq!(delta.removed_edges, vec![nt]);
        assert!(delta.vertex_upserts.is_empty(), "no ancestry moved");
        // All remaining (tree) edges had φ(nt) XORed in.
        assert_eq!(delta.edge_upserts.len(), 9);
    }

    #[test]
    fn tree_edge_removal_rehangs_subtree() {
        let g = generators::cycle(12);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(5)).unwrap();
        live.take_delta();
        let te = live
            .alive_edges()
            .find(|&e| live.is_tree[e.index()])
            .unwrap();
        live.remove_edge(te).unwrap();
        assert_invariants(&live);
        let delta = live.take_delta();
        assert!(!delta.full, "cycle re-hang should not need a rebuild");
        assert_eq!(delta.removed_edges, vec![te]);
        assert!(!delta.vertex_upserts.is_empty(), "subtree renumbered");
    }

    #[test]
    fn bridge_removal_rejected_and_state_unchanged() {
        let g = generators::path(6);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(11)).unwrap();
        live.take_delta();
        let before = live.clone();
        for e in 0..g.num_edges() {
            assert_eq!(
                live.remove_edge(EdgeId::new(e)).unwrap_err(),
                LiveError::WouldDisconnect
            );
        }
        assert_eq!(live.num_alive_edges(), before.num_alive_edges());
        assert!(live.take_delta().is_empty());
        assert_invariants(&live);
    }

    #[test]
    fn cut_vertex_removal_rejected() {
        // A star's center is a cut vertex.
        let g = generators::star(5);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(2)).unwrap();
        let center = (0..g.num_vertices())
            .map(VertexId::new)
            .max_by_key(|&v| g.degree(v))
            .unwrap();
        assert_eq!(
            live.remove_vertex(center).unwrap_err(),
            LiveError::WouldDisconnect
        );
        assert_invariants(&live);
    }

    #[test]
    fn vertex_removal_on_complete_graph() {
        let g = generators::complete(7);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(4)).unwrap();
        live.take_delta();
        for i in [6usize, 3, 0] {
            live.remove_vertex(VertexId::new(i)).unwrap();
            assert_invariants(&live);
            let delta = live.take_delta();
            assert!(delta.removed_vertices.contains(&VertexId::new(i)));
            assert!(!live.is_alive_vertex(VertexId::new(i)));
        }
        assert_eq!(live.num_alive_vertices(), 4);
        // Every surviving pair is still connected.
        for s in live.alive_vertices() {
            for t in live.alive_vertices() {
                assert!(alive_connected(&live, s, t));
            }
        }
    }

    #[test]
    fn root_removal_forces_full_relabel() {
        let g = generators::complete(5);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(9)).unwrap();
        live.take_delta();
        let root = live.root();
        live.remove_vertex(root).unwrap();
        assert_invariants(&live);
        let delta = live.take_delta();
        assert!(delta.full, "root removal relabels from scratch");
        assert!(delta.removed_vertices.contains(&root));
        assert_ne!(live.root(), root);
    }

    #[test]
    fn random_churn_preserves_invariants_grid() {
        let g = generators::grid(6, 6);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(0xC0FFEE)).unwrap();
        live.take_delta();
        let mut rng = Seed::new(0xD1CE).stream();
        let mut removed = 0usize;
        let mut attempts = 0usize;
        while removed < 20 && attempts < 400 {
            attempts += 1;
            if rng().is_multiple_of(4) {
                let alive: Vec<VertexId> = live.alive_vertices().collect();
                let v = alive[(rng() % alive.len() as u64) as usize];
                if v != live.root() && live.remove_vertex(v).is_ok() {
                    removed += 1;
                }
            } else {
                let alive: Vec<EdgeId> = live.alive_edges().collect();
                let e = alive[(rng() % alive.len() as u64) as usize];
                if live.remove_edge(e).is_ok() {
                    removed += 1;
                }
            }
            assert_invariants(&live);
        }
        assert!(removed >= 20, "only {removed} removals in {attempts} tries");
        // Alive graph still fully connected.
        for s in live.alive_vertices() {
            for t in live.alive_vertices() {
                assert!(alive_connected(&live, s, t));
            }
        }
    }

    #[test]
    fn dirty_tracking_is_exact_for_non_tree_removal() {
        let g = generators::grid(5, 5);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(21)).unwrap();
        live.take_delta();
        let before = live.clone();
        let nt = live
            .alive_edges()
            .find(|&e| !live.is_tree[e.index()])
            .unwrap();
        live.remove_edge(nt).unwrap();
        let delta = live.take_delta();
        // Every alive edge NOT in the upsert list must be byte-identical
        // to its pre-removal label.
        for e in live.alive_edges() {
            if !delta.edge_upserts.contains(&e) {
                assert_eq!(live.edge_label(e), before.edge_label(e));
            }
        }
        for v in live.alive_vertices() {
            if !delta.vertex_upserts.contains(&v) {
                assert_eq!(live.vertex_label(v).anc, before.vertex_label(v).anc);
            }
        }
    }

    #[test]
    fn dirty_tracking_is_exact_for_tree_removal() {
        let g = generators::grid(5, 5);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(33)).unwrap();
        live.take_delta();
        let before = live.clone();
        let te = live
            .alive_edges()
            .find(|&e| live.is_tree[e.index()])
            .unwrap();
        live.remove_edge(te).unwrap();
        let delta = live.take_delta();
        if delta.full {
            return; // fallback path: everything is an upsert by definition
        }
        for e in live.alive_edges() {
            if !delta.edge_upserts.contains(&e) {
                assert_eq!(live.edge_label(e), before.edge_label(e), "edge {e:?}");
            }
        }
        for v in live.alive_vertices() {
            if !delta.vertex_upserts.contains(&v) {
                assert_eq!(live.vertex_label(v).anc, before.vertex_label(v).anc);
            }
        }
    }

    #[test]
    fn determinism_same_ops_same_labels() {
        let g = generators::grid(4, 6);
        let ops = |live: &mut LiveCycleSpace| {
            let nt = live
                .alive_edges()
                .find(|&e| !live.is_tree[e.index()])
                .unwrap();
            live.remove_edge(nt).unwrap();
            let te = live
                .alive_edges()
                .find(|&e| live.is_tree[e.index()])
                .unwrap();
            live.remove_edge(te).unwrap();
        };
        let mut a = LiveCycleSpace::new(&g, 4, Seed::new(77)).unwrap();
        let mut b = LiveCycleSpace::new(&g, 4, Seed::new(77)).unwrap();
        ops(&mut a);
        ops(&mut b);
        for e in a.alive_edges() {
            assert_eq!(a.edge_label(e), b.edge_label(e));
        }
        for v in a.alive_vertices() {
            assert_eq!(a.vertex_label(v).anc, b.vertex_label(v).anc);
        }
    }

    #[test]
    fn self_loop_removal_is_trivial() {
        let mut b = ftl_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let lp = b.add_edge(1, 1, 1);
        let g = b.build();
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(8)).unwrap();
        live.take_delta();
        live.remove_edge(lp).unwrap();
        assert_invariants(&live);
        let delta = live.take_delta();
        assert_eq!(delta.removed_edges, vec![lp]);
        assert!(delta.edge_upserts.is_empty());
    }

    #[test]
    fn last_vertex_protected() {
        let g = generators::path(2);
        let mut live = LiveCycleSpace::new(&g, 4, Seed::new(1)).unwrap();
        let keep = live.root();
        let other = live.alive_vertices().find(|&v| v != keep).unwrap();
        live.remove_vertex(other).unwrap();
        assert_eq!(live.remove_vertex(keep).unwrap_err(), LiveError::LastVertex);
    }
}
