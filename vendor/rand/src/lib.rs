//! Offline stand-in for the slice of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to a crates registry, so this
//! vendored crate provides API-compatible implementations of exactly the
//! pieces the workspace calls: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for experiment workloads. It is **not** the
//! same stream as upstream `StdRng` (ChaCha12), so seeds produce different
//! (but equally valid) workloads than a registry build would.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly to yield
/// a `T` (the type parameter drives integer-literal inference, exactly like
/// upstream's `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniformly sampleable from ranges (mirrors upstream's
/// `SampleUniform`). A single blanket `SampleRange` impl per range shape
/// keeps type inference flowing from the call site, exactly like upstream.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reduce(rng.next_u64(), span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Maps a uniform `u64` onto `0..span` (Lemire's multiply-shift reduction;
/// the tiny modulo bias is irrelevant for experiment sampling).
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, exactly like upstream.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut z = state;
            let mut next = move || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=8);
            assert!((1..=8).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
