//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! The build environment has no crates-registry access, so this vendored
//! crate implements the subset of the proptest API our property tests call:
//! the [`Strategy`] trait with `prop_map`, integer-range and tuple
//! strategies, [`collection::vec`], `any::<T>()`, [`prelude::ProptestConfig`],
//! and the [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG (seeded by the test name), and there is **no shrinking** —
//! a failing case panics with the case number so it can be replayed.

pub mod test_runner {
    //! Deterministic case generation.

    /// The per-test random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds a generator for `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h ^ ((case as u64 + 1) << 32))
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `0..span` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }

    /// Error type carried by a property body's `Result` (upstream:
    /// `TestCaseError`); assertions in this shim panic instead, so values
    /// of this type only arise from explicit `Err` returns.
    #[derive(Debug, Clone)]
    pub struct TestCaseError;

    /// Test-run configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 128 }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for an [`Arbitrary`] type; see [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Admissible size arguments for [`vec()`]: an exact length or a range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&$strategy, &mut rng);)+
                // Bodies may early-exit with `return Ok(())`, as upstream
                // proptest wraps them in a Result-returning closure.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e:?}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = crate::test_runner::TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<bool>(), 2usize..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<u8>(), 7usize).generate(&mut rng);
        assert_eq!(exact.len(), 7);
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = crate::test_runner::TestRng::for_case("map", 0);
        let strat = (0usize..10, any::<bool>()).prop_map(|(n, b)| if b { n } else { n + 10 });
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, multiple args, assertions.
        #[test]
        fn macro_generates_cases((a, b) in (0usize..5, 0usize..5), flip in any::<bool>()) {
            prop_assert!(a < 5 && b < 5);
            let x = if flip { a } else { b };
            prop_assert_eq!(x.min(4), x);
            prop_assert_ne!(x + 1, 0);
        }
    }
}
