//! Road-network distance service: FT approximate distance labels on a
//! weighted grid ("city blocks") under road closures (Theorem 1.4).
//!
//! Run with: `cargo run --example road_network_distances -p ftl-core --release`

use ftl_core::distance::{DistanceLabeling, DistanceParams};
use ftl_graph::shortest_path::distance_avoiding;
use ftl_graph::traversal::forbidden_mask;
use ftl_graph::{generators, EdgeId, VertexId};
use ftl_seeded::Seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    // A 7x7 street grid; block lengths 1..=8.
    let (rows, cols, max_w) = (7usize, 7usize, 8u64);
    let g = generators::random_weighted_grid(rows, cols, max_w, &mut rng);
    println!(
        "road grid: {} intersections, {} segments, heaviest segment {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_weight()
    );

    let k = 2;
    let dl = DistanceLabeling::new(&g, DistanceParams::new(k), Seed::new(11));
    println!(
        "labels built: {} distance scales, worst-case stretch bound {} (f = 2)",
        dl.num_scales(),
        dl.stretch_bound(2)
    );

    // Simulate a day of queries with up to two road closures each.
    let queries = 50;
    let mut served = 0;
    let mut unreachable = 0;
    let mut sum_ratio = 0.0;
    let mut worst_ratio: f64 = 1.0;
    for _ in 0..queries {
        let s = VertexId::new(rng.gen_range(0..g.num_vertices()));
        let t = VertexId::new(rng.gen_range(0..g.num_vertices()));
        let closures: Vec<EdgeId> = (0..rng.gen_range(0..=2))
            .map(|_| EdgeId::new(rng.gen_range(0..g.num_edges())))
            .collect();
        let est = dl.query(s, t, &closures);
        let truth = distance_avoiding(&g, s, t, &forbidden_mask(&g, &closures));
        match (est, truth) {
            (Some(e), Some(d)) => {
                served += 1;
                if d > 0 {
                    let r = e.distance as f64 / d as f64;
                    sum_ratio += r;
                    worst_ratio = worst_ratio.max(r);
                }
            }
            (None, None) => unreachable += 1,
            (e, d) => panic!("label answer {e:?} disagrees with ground truth {d:?}"),
        }
    }
    println!("queries: {queries}, served: {served}, unreachable: {unreachable}");
    if served > 0 {
        println!(
            "estimate/true-distance ratio: mean {:.2}, worst {:.2} (guarantee <= {})",
            sum_ratio / served as f64,
            worst_ratio,
            dl.stretch_bound(2)
        );
    }
}
