//! Quickstart: label a graph once, then answer ⟨s, t, F⟩ connectivity and
//! distance queries from labels alone.
//!
//! Run with: `cargo run --example quickstart -p ftl-core`

use ftl_core::connectivity::{ConnectivityLabeling, SchemeKind};
use ftl_core::distance::{DistanceLabeling, DistanceParams};
use ftl_graph::{generators, EdgeId, VertexId};
use ftl_seeded::Seed;

fn main() {
    // A 6x6 grid network; vertex (r, c) has index r * 6 + c.
    let g = generators::grid(6, 6);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // ---------------------------------------------------------------- //
    // 1. FT connectivity labels (Theorem 1.3), sketch-based variant.    //
    // ---------------------------------------------------------------- //
    let labeling = ConnectivityLabeling::new(&g, SchemeKind::Sketch, 4, Seed::new(2024));
    println!(
        "sketch labels: vertex <= {} bits, edge <= {} bits",
        labeling.vertex_label_bits(),
        labeling.edge_label_bits()
    );

    let s = VertexId::new(0); // top-left corner
    let t = VertexId::new(35); // bottom-right corner

    // Cut the two edges leaving the top-left corner: s becomes isolated.
    let corner_cut: Vec<EdgeId> = g.neighbors(s).iter().map(|nb| nb.edge).collect();
    let fault_labels: Vec<_> = corner_cut.iter().map(|&e| labeling.edge_label(e)).collect();

    let connected = labeling.decode(&labeling.vertex_label(s), &labeling.vertex_label(t), &[]);
    println!("no faults:        s-t connected = {connected}");
    let connected = labeling.decode(
        &labeling.vertex_label(s),
        &labeling.vertex_label(t),
        &fault_labels,
    );
    println!("corner cut off:   s-t connected = {connected}");

    // The cheaper O(f + log n)-bit variant answers identically.
    let cs = ConnectivityLabeling::new(&g, SchemeKind::CycleSpace, 4, Seed::new(7));
    let fl: Vec<_> = corner_cut.iter().map(|&e| cs.edge_label(e)).collect();
    println!(
        "cycle-space agrees: {} (labels: edge <= {} bits)",
        !cs.decode(&cs.vertex_label(s), &cs.vertex_label(t), &fl),
        cs.edge_label_bits()
    );

    // ---------------------------------------------------------------- //
    // 2. FT approximate distance labels (Theorem 1.4).                  //
    // ---------------------------------------------------------------- //
    let dl = DistanceLabeling::new(&g, DistanceParams::new(2), Seed::new(99));
    let single_fault = [g.find_edge(VertexId::new(0), VertexId::new(1)).unwrap()];
    match dl.query(s, t, &single_fault) {
        Some(est) => println!(
            "distance estimate with one fault: {} (true distance 10, bound {}x)",
            est.distance,
            dl.stretch_bound(1)
        ),
        None => println!("disconnected"),
    }
    match dl.query(s, t, &corner_cut) {
        Some(est) => println!("unexpected estimate {est:?}"),
        None => println!("corner cut: distance query correctly reports disconnection"),
    }
}
