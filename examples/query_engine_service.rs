//! Serving labels at scale: stand up an `ftl-engine` over wire-encoded
//! cycle-space labels, then push batched connectivity traffic through it.
//!
//! The engine pipeline is store → batcher → decoder → cache: labels live
//! wire-encoded in a sharded store, queries sharing a fault set pay one
//! GF(2) elimination together, and eliminated bases are LRU-cached so
//! recurring fault sets skip elimination entirely.
//!
//! Run with: `cargo run --release --example query_engine_service`

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{
    run_scenario, BatchRequest, ConnQuery, Engine, EngineConfig, ParEngine, ScenarioConfig,
};
use ftl_graph::{generators, EdgeId, VertexId};
use ftl_seeded::Seed;

fn main() {
    // An 8x8 grid "data-centre fabric"; label it once against up to 16
    // faults.
    let g = generators::grid(8, 8);
    let scheme = CycleSpaceScheme::label(&g, 16, Seed::new(2026)).expect("grid is connected");

    // Stand the engine up: every label is wire-encoded into the sharded
    // store (certificates enabled so outages come back with their cut).
    let mut engine = Engine::from_cycle_space(
        &scheme,
        EngineConfig {
            num_shards: 8,
            cache_capacity: 32,
            collect_certificates: true,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    println!(
        "sidecar: {} vertex / {} edge records decoded at freeze time (zero-decode serving)",
        engine.store().sidecar().decoded_vertices(),
        engine.store().sidecar().decoded_edges()
    );
    println!(
        "store: {} records, {} wire bytes across {} shards",
        engine.store().len(),
        engine.store().bytes_total(),
        engine.store().num_shards()
    );

    // A batch: two fault sets, six queries naming them by index.
    let cut_corner: Vec<EdgeId> = g
        .neighbors(VertexId::new(0))
        .iter()
        .map(|nb| nb.edge)
        .collect();
    let scattered = vec![EdgeId::new(5), EdgeId::new(40), EdgeId::new(77)];
    let req = BatchRequest {
        fault_sets: vec![cut_corner, scattered],
        queries: vec![
            ConnQuery {
                s: VertexId::new(0),
                t: VertexId::new(63),
                fault_set: 0,
            },
            ConnQuery {
                s: VertexId::new(9),
                t: VertexId::new(63),
                fault_set: 0,
            },
            ConnQuery {
                s: VertexId::new(0),
                t: VertexId::new(63),
                fault_set: 1,
            },
            ConnQuery {
                s: VertexId::new(12),
                t: VertexId::new(50),
                fault_set: 1,
            },
            ConnQuery {
                s: VertexId::new(7),
                t: VertexId::new(56),
                fault_set: 0,
            },
            ConnQuery {
                s: VertexId::new(7),
                t: VertexId::new(56),
                fault_set: 1,
            },
        ],
    };
    let resp = engine.execute(&req).expect("batch");
    println!(
        "batch: {} queries over {} fault sets -> {} eliminations, {} cache hits",
        resp.stats.queries, resp.stats.fault_sets, resp.stats.eliminations, resp.stats.cache_hits
    );
    for (q, r) in req.queries.iter().zip(&resp.results) {
        match (&r.connected, &r.certificate) {
            (true, _) => println!("  {:?} -> {:?}  connected", q.s, q.t),
            (false, Some(cut)) => {
                println!("  {:?} -> {:?}  DISCONNECTED by cut {cut:?}", q.s, q.t)
            }
            (false, None) => println!("  {:?} -> {:?}  DISCONNECTED", q.s, q.t),
        }
    }

    // Re-running the same batch hits the cache: zero eliminations.
    let resp = engine.execute(&req).expect("batch replay");
    println!(
        "replay: {} eliminations, {} cache hits",
        resp.stats.eliminations, resp.stats.cache_hits
    );

    // A scenario run: multi-round churn traffic with ground-truth
    // verification, reported as throughput / latency / reachability.
    let mut cfg = ScenarioConfig::new("example-churn", 8);
    cfg.rounds = 4;
    cfg.fault_sets_per_round = 3;
    cfg.queries_per_fault_set = 64;
    cfg.churn = 0.25;
    cfg.verify = true;
    let report = run_scenario(&g, "grid-8x8", &mut engine, None, &cfg).expect("scenario");
    println!(
        "scenario '{}': {:.0} queries/s, p50 {:.0} ns/query, reachability {:.3}, mismatches {}",
        report.name,
        report.throughput_qps,
        report.latency_p50_ns,
        report.reachable_fraction,
        report.mismatches
    );

    // Multi-worker serving: N workers share the SAME frozen store behind an
    // Arc (reads are lock-free), each with a private elimination cache and
    // decode scratch. Results are bit-identical to the serial engine.
    let workers = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut par = ParEngine::new(engine.shared_store(), engine.config(), workers);
    let mut serial = par.serial_engine();
    let par_resp = par.execute(&req).expect("parallel batch");
    let serial_resp = serial.execute(&req).expect("serial batch");
    assert_eq!(
        par_resp.results, serial_resp.results,
        "parallel and serial engines must agree"
    );
    let par_report = run_scenario(&g, "grid-8x8", &mut par, None, &cfg).expect("parallel scenario");
    println!(
        "parallel scenario ({} workers): {:.0} queries/s aggregate, mismatches {}",
        par.num_workers(),
        par_report.throughput_qps,
        par_report.mismatches
    );
    for w in &par_report.workers {
        println!(
            "  worker {}: {} queries, {:.0} queries/s over its busy time",
            w.worker, w.queries, w.throughput_qps
        );
    }
}
