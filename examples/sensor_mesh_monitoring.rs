//! Sensor-mesh monitoring: compare the paper's two connectivity labelings
//! as a lightweight "is the mesh still connected around these dead links?"
//! monitor, including label-budget accounting (Theorems 3.6 vs 3.7).
//!
//! Run with: `cargo run --example sensor_mesh_monitoring -p ftl-core --release`

use ftl_core::connectivity::{ConnectivityLabeling, SchemeKind};
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_graph::{generators, EdgeId, VertexId};
use ftl_seeded::Seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(31337);
    // A sensor mesh: random connected graph with some extra links.
    let n = 60;
    let g = generators::connected_random(n, 0.04, 1, &mut rng);
    println!(
        "sensor mesh: {} nodes, {} links",
        g.num_vertices(),
        g.num_edges()
    );

    // Label once with each scheme, for several fault budgets.
    println!("\nlabel budget comparison (edge label bits):");
    println!(
        "{:>4} | {:>18} | {:>14}",
        "f", "cycle-space (3.6)", "sketch (3.7)"
    );
    for f in [1usize, 4, 16, 64] {
        let cs = ConnectivityLabeling::new(&g, SchemeKind::CycleSpace, f, Seed::new(1));
        let sk = ConnectivityLabeling::new(&g, SchemeKind::Sketch, f, Seed::new(1));
        println!(
            "{:>4} | {:>18} | {:>14}",
            f,
            cs.edge_label_bits(),
            sk.edge_label_bits()
        );
    }
    println!("(cycle-space grows with f; sketch is flat — exactly Thm 1.3's tradeoff)\n");

    // Monitoring loop: batches of dead links arrive; the base station holds
    // only labels of the affected links + endpoints.
    let f = 5;
    let monitor = ConnectivityLabeling::new(&g, SchemeKind::CycleSpace, f, Seed::new(2));
    let mut checks = 0;
    let mut alarms = 0;
    for round in 0..30 {
        let dead: Vec<EdgeId> = (0..rng.gen_range(1..=f))
            .map(|_| EdgeId::new(rng.gen_range(0..g.num_edges())))
            .collect();
        let dead_labels: Vec<_> = dead.iter().map(|&e| monitor.edge_label(e)).collect();
        // Check gateway (node 0) connectivity to a few random sensors.
        for _ in 0..5 {
            let sensor = VertexId::new(rng.gen_range(0..n));
            let ok = monitor.decode(
                &monitor.vertex_label(VertexId::new(0)),
                &monitor.vertex_label(sensor),
                &dead_labels,
            );
            checks += 1;
            if !ok {
                alarms += 1;
            }
            // Cross-check against ground truth (a real deployment can't,
            // which is the point of the labels).
            let truth =
                connected_avoiding(&g, VertexId::new(0), sensor, &forbidden_mask(&g, &dead));
            assert_eq!(ok, truth, "round {round}: label monitor disagrees");
        }
    }
    println!("monitoring: {checks} checks, {alarms} disconnection alarms, 0 errors");
}
