//! Datacenter failover: fault-tolerant compact routing on a fat-tree-like
//! topology under random link failures (the Theorem 5.8 scheme end to end).
//!
//! Run with: `cargo run --example datacenter_failover -p ftl-routing --release`

use ftl_graph::{generators, EdgeId, VertexId};
use ftl_routing::baselines::{full_information_table_bits, route_full_information};
use ftl_routing::{FtRoutingScheme, RoutingParams};
use ftl_seeded::Seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

fn main() {
    let (pods, tors, hosts, cores) = (3, 2, 2, 2);
    let g = generators::fat_tree_like(pods, tors, hosts, cores);
    let h0 = generators::fat_tree_first_host(pods, tors, cores);
    let num_hosts = pods * tors * hosts;
    println!(
        "fat-tree-like fabric: {} switches+hosts, {} links, {} hosts",
        g.num_vertices(),
        g.num_edges(),
        num_hosts
    );

    let f = 2;
    let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, f), Seed::new(7));
    println!(
        "preprocessing done: {} distance scales, max table {} bits, labels ~{} bits",
        scheme.num_scales(),
        scheme.max_table_bits(&g),
        scheme.route_label(VertexId::new(h0)).bits()
    );
    println!(
        "(full-information baseline would store {} bits per switch)",
        full_information_table_bits(&g)
    );

    let mut rng = StdRng::seed_from_u64(42);
    let flows = 40;
    let mut delivered = 0;
    let mut disconnected = 0;
    let mut sum_stretch = 0.0;
    let mut max_stretch: f64 = 0.0;
    let mut baseline_sum = 0.0;
    for _ in 0..flows {
        // Random host pair + random link failures.
        let s = VertexId::new(h0 + rng.gen_range(0..num_hosts));
        let t = VertexId::new(h0 + rng.gen_range(0..num_hosts));
        let mut faults: HashSet<EdgeId> = HashSet::new();
        while faults.len() < f {
            faults.insert(EdgeId::new(rng.gen_range(0..g.num_edges())));
        }
        let out = scheme.route(&g, s, t, &faults);
        if !out.delivered {
            disconnected += 1;
            continue;
        }
        delivered += 1;
        let stretch = out.stretch().unwrap_or(1.0);
        sum_stretch += stretch;
        max_stretch = max_stretch.max(stretch);
        let base = route_full_information(&g, s, t, &faults);
        baseline_sum += base.stretch().unwrap_or(1.0);
    }
    println!("flows: {flows}, delivered: {delivered}, cut off: {disconnected}");
    if delivered > 0 {
        println!(
            "compact-scheme stretch: mean {:.2}, max {:.2} (bound {})",
            sum_stretch / delivered as f64,
            max_stretch,
            scheme.stretch_bound(f)
        );
        println!(
            "full-information baseline mean stretch: {:.2}",
            baseline_sum / delivered as f64
        );
    }
}
