//! End-to-end integration tests: graph → tree covers → per-tree
//! connectivity labels → FT approximate distance queries (Theorem 1.4).

use ftl_core::distance::{DistanceLabeling, DistanceParams};
use ftl_graph::shortest_path::distance_avoiding;
use ftl_graph::traversal::forbidden_mask;
use ftl_graph::{generators, EdgeId, Graph, VertexId};
use ftl_seeded::Seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn check(g: &Graph, k: u32, f: usize, queries: usize, seed: u64) -> f64 {
    let dl = DistanceLabeling::new(g, DistanceParams::new(k), Seed::new(seed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
    let mut worst: f64 = 1.0;
    for _ in 0..queries {
        let s = VertexId::new(rng.gen_range(0..g.num_vertices()));
        let t = VertexId::new(rng.gen_range(0..g.num_vertices()));
        let mut faults = Vec::new();
        while faults.len() < f.min(g.num_edges()) {
            let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
            if !faults.contains(&e) {
                faults.push(e);
            }
        }
        let mask = forbidden_mask(g, &faults);
        let truth = distance_avoiding(g, s, t, &mask);
        let est = dl.query(s, t, &faults);
        match (truth, est) {
            (None, None) => {}
            (Some(d), Some(e)) => {
                assert!(e.distance >= d, "soundness: {} < {d}", e.distance);
                let bound = dl.stretch_bound(faults.len());
                assert!(e.distance <= bound * d.max(1), "stretch violated");
                if d > 0 {
                    worst = worst.max(e.distance as f64 / d as f64);
                }
            }
            (td, ed) => panic!("connectivity mismatch {td:?} vs {ed:?}"),
        }
    }
    worst
}

#[test]
fn distance_pipeline_unweighted() {
    let g = generators::grid(6, 6);
    for k in [1, 2, 3] {
        check(&g, k, 2, 40, 100 + k as u64);
    }
}

#[test]
fn distance_pipeline_weighted() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = generators::random_weighted_grid(5, 5, 16, &mut rng);
    for f in [0, 1, 3] {
        check(&g, 2, f, 30, 200 + f as u64);
    }
}

#[test]
fn distance_pipeline_random_graphs() {
    let mut rng = StdRng::seed_from_u64(13);
    for trial in 0..3 {
        let g = generators::connected_random(28, 0.08, 6, &mut rng);
        check(&g, 2, 2, 25, 300 + trial);
    }
}

#[test]
fn measured_stretch_well_below_worst_case() {
    // The paper's bound is worst case; typical stretch should be far lower.
    let g = generators::grid(6, 6);
    let worst = check(&g, 2, 1, 60, 999);
    let dl_bound = (8 * 2 - 2) * 2; // (8k-2)(f+1) with k=2, f=1
    assert!(worst <= dl_bound as f64);
    assert!(
        worst <= dl_bound as f64 / 1.5,
        "typical stretch {worst} suspiciously close to the worst case"
    );
}

#[test]
fn bridges_and_cuts_detected_at_query_time() {
    // A dumbbell: faults on the bridge must produce None exactly when s, t
    // are on opposite sides.
    let mut b = ftl_graph::GraphBuilder::new(8);
    for (u, v) in [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)] {
        b.add_unit_edge(u, v);
    }
    b.add_unit_edge(2, 3);
    let bridge1 = b.add_unit_edge(3, 4);
    b.add_unit_edge(3, 7);
    let g = b.build();
    let dl = DistanceLabeling::new(&g, DistanceParams::new(2), Seed::new(17));
    assert!(dl
        .query(VertexId::new(0), VertexId::new(5), &[bridge1])
        .is_none());
    assert!(dl
        .query(VertexId::new(0), VertexId::new(7), &[bridge1])
        .is_some());
    assert!(dl
        .query(VertexId::new(4), VertexId::new(6), &[bridge1])
        .is_some());
}
