//! End-to-end integration tests: graph generation → FT connectivity
//! labeling (both constructions) → label-only decoding vs ground truth.

use ftl_core::connectivity::{ConnectivityLabeling, SchemeKind};
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_graph::{generators, EdgeId, Graph, VertexId};
use ftl_seeded::Seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_faults(g: &Graph, f: usize, rng: &mut StdRng) -> Vec<EdgeId> {
    let mut faults = Vec::new();
    while faults.len() < f.min(g.num_edges()) {
        let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
        if !faults.contains(&e) {
            faults.push(e);
        }
    }
    faults
}

fn exercise(g: &Graph, kind: SchemeKind, f: usize, queries: usize, seed: u64) {
    let labeling = ConnectivityLabeling::new(g, kind, f, Seed::new(seed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
    for _ in 0..queries {
        let faults = random_faults(g, rng.gen_range(0..=f), &mut rng);
        let fl: Vec<_> = faults.iter().map(|&e| labeling.edge_label(e)).collect();
        let mask = forbidden_mask(g, &faults);
        let s = VertexId::new(rng.gen_range(0..g.num_vertices()));
        let t = VertexId::new(rng.gen_range(0..g.num_vertices()));
        let truth = connected_avoiding(g, s, t, &mask);
        let got = labeling.decode(&labeling.vertex_label(s), &labeling.vertex_label(t), &fl);
        assert_eq!(got, truth, "{kind:?} s={s:?} t={t:?} F={faults:?}");
    }
}

#[test]
fn both_schemes_on_every_family() {
    let mut rng = StdRng::seed_from_u64(7);
    let families: Vec<(&str, Graph)> = vec![
        ("path", generators::path(24)),
        ("cycle", generators::cycle(20)),
        ("grid", generators::grid(5, 5)),
        ("star", generators::star(20)),
        ("caterpillar", generators::caterpillar(6, 3)),
        ("complete", generators::complete(10)),
        (
            "er-connected",
            generators::connected_random(30, 0.08, 1, &mut rng),
        ),
        ("er-sparse", generators::erdos_renyi(30, 0.05, &mut rng)),
        ("fat-tree", generators::fat_tree_like(3, 2, 2, 2)),
    ];
    for (i, (name, g)) in families.iter().enumerate() {
        for kind in [SchemeKind::CycleSpace, SchemeKind::Sketch] {
            exercise(g, kind, 4, 40, 1000 + i as u64);
        }
        let _ = name;
    }
}

#[test]
fn schemes_agree_with_each_other() {
    let mut rng = StdRng::seed_from_u64(21);
    let g = generators::connected_random(25, 0.1, 1, &mut rng);
    let cs = ConnectivityLabeling::new(&g, SchemeKind::CycleSpace, 5, Seed::new(1));
    let sk = ConnectivityLabeling::new(&g, SchemeKind::Sketch, 5, Seed::new(2));
    for _ in 0..60 {
        let faults = random_faults(&g, rng.gen_range(0..=5), &mut rng);
        let s = VertexId::new(rng.gen_range(0..g.num_vertices()));
        let t = VertexId::new(rng.gen_range(0..g.num_vertices()));
        let a = cs.decode(
            &cs.vertex_label(s),
            &cs.vertex_label(t),
            &faults.iter().map(|&e| cs.edge_label(e)).collect::<Vec<_>>(),
        );
        let b = sk.decode(
            &sk.vertex_label(s),
            &sk.vertex_label(t),
            &faults.iter().map(|&e| sk.edge_label(e)).collect::<Vec<_>>(),
        );
        assert_eq!(a, b);
    }
}

#[test]
fn adversarial_fault_patterns() {
    // All edges of one vertex; a bridge; a full column cut of a grid.
    let g = generators::grid(4, 4);
    for kind in [SchemeKind::CycleSpace, SchemeKind::Sketch] {
        let labeling = ConnectivityLabeling::new(&g, kind, 8, Seed::new(9));
        // Isolate vertex 5 (all incident edges fail).
        let iso: Vec<EdgeId> = g
            .neighbors(VertexId::new(5))
            .iter()
            .map(|nb| nb.edge)
            .collect();
        let fl: Vec<_> = iso.iter().map(|&e| labeling.edge_label(e)).collect();
        let mask = forbidden_mask(&g, &iso);
        for t in 0..16 {
            let truth = connected_avoiding(&g, VertexId::new(5), VertexId::new(t), &mask);
            let got = labeling.decode(
                &labeling.vertex_label(VertexId::new(5)),
                &labeling.vertex_label(VertexId::new(t)),
                &fl,
            );
            assert_eq!(got, truth, "{kind:?} isolation query t={t}");
        }
    }
}

#[test]
fn repeated_queries_are_consistent() {
    let g = generators::grid(4, 4);
    let labeling = ConnectivityLabeling::new(&g, SchemeKind::Sketch, 3, Seed::new(5));
    let faults = [EdgeId::new(3), EdgeId::new(11)];
    let fl: Vec<_> = faults.iter().map(|&e| labeling.edge_label(e)).collect();
    let s = labeling.vertex_label(VertexId::new(0));
    let t = labeling.vertex_label(VertexId::new(15));
    let first = labeling.decode(&s, &t, &fl);
    for _ in 0..10 {
        assert_eq!(labeling.decode(&s, &t, &fl), first);
    }
}

#[test]
fn label_bits_match_theory_shape() {
    // Cycle-space edge labels: linear in f. Sketch labels: flat in f,
    // polylog in n.
    let g = generators::grid(6, 6);
    let mut prev = 0;
    for f in [1, 8, 16, 32] {
        let l = ConnectivityLabeling::new(&g, SchemeKind::CycleSpace, f, Seed::new(1));
        let bits = l.edge_label_bits();
        assert!(bits > prev, "cycle-space labels grow with f");
        prev = bits;
    }
    let small =
        ConnectivityLabeling::new(&generators::grid(4, 4), SchemeKind::Sketch, 1, Seed::new(1));
    let large =
        ConnectivityLabeling::new(&generators::grid(8, 8), SchemeKind::Sketch, 1, Seed::new(1));
    assert!(large.edge_label_bits() > small.edge_label_bits());
    let f_large = ConnectivityLabeling::new(
        &generators::grid(8, 8),
        SchemeKind::Sketch,
        32,
        Seed::new(1),
    );
    assert_eq!(large.edge_label_bits(), f_large.edge_label_bits());
}
