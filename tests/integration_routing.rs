//! End-to-end integration tests for the routing stack: preprocessing →
//! labels/tables → message simulation with unknown faults, plus the
//! forbidden-set variant and baseline comparisons.

use ftl_graph::{generators, EdgeId, Graph, VertexId};
use ftl_routing::baselines::route_full_information;
use ftl_routing::{FtRoutingScheme, RoutingParams};
use ftl_seeded::Seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

fn random_faults(g: &Graph, f: usize, rng: &mut StdRng) -> HashSet<EdgeId> {
    let mut faults = HashSet::new();
    while faults.len() < f.min(g.num_edges()) {
        faults.insert(EdgeId::new(rng.gen_range(0..g.num_edges())));
    }
    faults
}

#[test]
fn ft_routing_vs_forbidden_set_vs_baseline() {
    let g = generators::grid(4, 4);
    let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 2), Seed::new(31));
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..25 {
        let s = VertexId::new(rng.gen_range(0..16));
        let t = VertexId::new(rng.gen_range(0..16));
        let faults = random_faults(&g, 2, &mut rng);
        let ft = scheme.route(&g, s, t, &faults);
        let fs = scheme.route_forbidden_set(&g, s, t, &faults);
        let base = route_full_information(&g, s, t, &faults);
        assert_eq!(ft.delivered, ft.optimal.is_some());
        assert_eq!(fs.delivered, fs.optimal.is_some());
        assert_eq!(base.delivered, base.optimal.is_some());
        if let Some(opt) = ft.optimal {
            // Forbidden-set (faults known) has the tighter bound.
            assert!(fs.weight <= scheme.forbidden_set_stretch_bound(faults.len()) * opt.max(1));
            assert!(ft.weight <= scheme.stretch_bound(faults.len()) * opt.max(1));
            // Knowing the faults can only help (on the same scheme family).
            // Not a theorem per-instance, so only check the bound ordering:
            assert!(
                scheme.forbidden_set_stretch_bound(faults.len())
                    <= scheme.stretch_bound(faults.len())
            );
        }
    }
}

#[test]
fn routing_on_datacenter_topology() {
    let g = generators::fat_tree_like(3, 2, 2, 2);
    let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 1), Seed::new(33));
    let h0 = generators::fat_tree_first_host(3, 2, 2);
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..15 {
        let s = VertexId::new(h0 + rng.gen_range(0..12));
        let t = VertexId::new(h0 + rng.gen_range(0..12));
        let faults = random_faults(&g, 1, &mut rng);
        let out = scheme.route(&g, s, t, &faults);
        match out.optimal {
            Some(opt) => {
                assert!(out.delivered);
                assert!(out.weight <= scheme.stretch_bound(faults.len()) * opt.max(1));
            }
            None => assert!(!out.delivered),
        }
    }
}

#[test]
fn phases_track_distance_scales() {
    // Nearby destinations should be reached in early phases.
    let g = generators::path(32);
    let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 1), Seed::new(35));
    let near = scheme.route(&g, VertexId::new(0), VertexId::new(1), &HashSet::new());
    let far = scheme.route(&g, VertexId::new(0), VertexId::new(31), &HashSet::new());
    assert!(near.delivered && far.delivered);
    assert!(near.phases <= far.phases);
}

#[test]
fn headers_and_tables_within_theory_shape() {
    let g = generators::grid(4, 4);
    let f2 = FtRoutingScheme::new(&g, RoutingParams::new(2, 2), Seed::new(36));
    let f0 = FtRoutingScheme::new(&g, RoutingParams::new(2, 0), Seed::new(36));
    // Table sizes grow with f (more copies, bigger gamma blocks).
    assert!(f2.max_table_bits(&g) > f0.max_table_bits(&g));
    // Routing labels exist for every vertex and are polylog-sized relative
    // to tables.
    for v in g.vertices() {
        let l = f2.route_label(v);
        assert!(l.bits() > 0);
        assert!(l.bits() < f2.max_table_bits(&g));
    }
}

#[test]
fn stress_random_graphs_and_fault_sets() {
    let mut rng = StdRng::seed_from_u64(44);
    for trial in 0..3 {
        let g = generators::connected_random(18, 0.12, 1, &mut rng);
        let f = 1 + (trial as usize % 2);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, f), Seed::new(50 + trial));
        for _ in 0..10 {
            let s = VertexId::new(rng.gen_range(0..g.num_vertices()));
            let t = VertexId::new(rng.gen_range(0..g.num_vertices()));
            let faults = random_faults(&g, f, &mut rng);
            let out = scheme.route(&g, s, t, &faults);
            match out.optimal {
                Some(opt) => {
                    assert!(out.delivered, "s={s:?} t={t:?} F={faults:?}");
                    assert!(out.weight <= scheme.stretch_bound(faults.len()) * opt.max(1));
                }
                None => assert!(!out.delivered),
            }
        }
    }
}

#[test]
fn lower_bound_gadget_observes_omega_f() {
    use ftl_routing::lower_bound::{closed_form_expected_stretch, expected_gadget_stretch};
    let mut rng = StdRng::seed_from_u64(60);
    for f in [1usize, 3, 7] {
        let len = 8;
        let (g, s, t, last) = generators::lower_bound_gadget(f, len);
        let emp = expected_gadget_stretch(&g, s, t, &last, len as u64, 4000, &mut rng);
        let cf = closed_form_expected_stretch(f + 1, len as u64);
        assert!((emp - cf).abs() / cf < 0.1, "f={f}: {emp} vs {cf}");
        assert!(emp >= f as f64 / 2.0, "Omega(f): f={f} stretch={emp}");
    }
}
