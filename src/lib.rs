//! Umbrella crate for the Dory–Parter PODC'21 reproduction.
//!
//! Re-exports every workspace crate under one roof so downstream users (and
//! the repo-level integration tests and examples) can depend on a single
//! `ftl` crate.

#![forbid(unsafe_code)]

pub use ftl_chaos as chaos;
pub use ftl_core as core_schemes;
pub use ftl_cycle_space as cycle_space;
pub use ftl_engine as engine;
pub use ftl_gf2 as gf2;
pub use ftl_graph as graph;
pub use ftl_labels as labels;
pub use ftl_routing as routing;
pub use ftl_seeded as seeded;
pub use ftl_server as server;
pub use ftl_sketch as sketch;
pub use ftl_tree_cover as tree_cover;
